//! Per-job outcomes and per-tenant service reports.

use std::collections::BTreeMap;

use crate::digest::EntryDigest;
use crate::resilience::FailedJob;

/// Everything recorded about one completed job.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobOutcome {
    /// Job id from the arrival trace.
    pub id: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Report label of the job's shape (kernel name or `"expr"`).
    pub label: String,
    /// Arrival cycle (trace time).
    pub arrival: u64,
    /// Cycle the job first reached a serving slot.
    pub first_start: u64,
    /// Cycle the job fully drained.
    pub completion: u64,
    /// Cycles the job actually held a slot (across all its segments).
    pub service_cycles: u64,
    /// Times the scheduler preempted the job mid-run.
    pub preemptions: u32,
    /// Retry attempts the job consumed after serving-visible faults
    /// (0 = completed on its first attempt).
    pub retries: u32,
    /// Whether the job completed after its deadline.
    pub deadline_missed: bool,
    /// Digest of the job's marshaled outQ entry stream.
    pub digest: EntryDigest,
}

impl JobOutcome {
    /// Cycles spent waiting: sojourn minus slot occupancy.
    pub fn queue_cycles(&self) -> u64 {
        self.sojourn_cycles().saturating_sub(self.service_cycles)
    }

    /// Arrival-to-completion cycles.
    pub fn sojourn_cycles(&self) -> u64 {
        self.completion.saturating_sub(self.arrival)
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in 0..=100).
/// Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], q: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = u64::from(q.min(100));
    // Nearest-rank: ceil(q/100 * n), 1-indexed.
    let rank = (q * sorted.len() as u64).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// p50/p95/p99 of one latency distribution, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl LatencySummary {
    /// Summarizes `samples` (consumed: sorted in place).
    pub fn of(samples: &mut [u64]) -> Self {
        samples.sort_unstable();
        Self {
            p50: percentile(samples, 50),
            p95: percentile(samples, 95),
            p99: percentile(samples, 99),
        }
    }
}

/// One tenant's service report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs completed.
    pub completed: u64,
    /// Arrivals rejected at admission (queue full, circuit open, or
    /// global saturation).
    pub rejected: u64,
    /// Jobs that terminally failed after exhausting their retry budget.
    pub failed: u64,
    /// Retry attempts across the tenant's jobs (completed and failed).
    pub retries: u64,
    /// Completed jobs that finished past their deadline.
    pub deadline_misses: u64,
    /// Total slot cycles the tenant consumed.
    pub service_cycles: u64,
    /// Jobs completed per million cycles of makespan.
    pub throughput_per_mcycle: f64,
    /// Queueing delay distribution (arrival → slot, minus service).
    pub queue: LatencySummary,
    /// Service-time distribution (slot occupancy).
    pub service: LatencySummary,
    /// Sojourn distribution (arrival → completion).
    pub sojourn: LatencySummary,
}

/// Builds per-tenant reports from completed-job outcomes, terminal
/// failures, rejects, and retry counts.
pub fn tenant_reports(
    outcomes: &[JobOutcome],
    failed: &[FailedJob],
    rejected: &BTreeMap<u32, u64>,
    retries: &BTreeMap<u32, u64>,
    makespan: u64,
) -> Vec<TenantReport> {
    let mut by_tenant: BTreeMap<u32, Vec<&JobOutcome>> = BTreeMap::new();
    for o in outcomes {
        by_tenant.entry(o.tenant).or_default().push(o);
    }
    for (&tenant, &count) in rejected {
        if count > 0 {
            by_tenant.entry(tenant).or_default();
        }
    }
    for f in failed {
        by_tenant.entry(f.tenant).or_default();
    }
    by_tenant
        .into_iter()
        .map(|(tenant, jobs)| {
            let mut queue: Vec<u64> = jobs.iter().map(|o| o.queue_cycles()).collect();
            let mut service: Vec<u64> = jobs.iter().map(|o| o.service_cycles).collect();
            let mut sojourn: Vec<u64> = jobs.iter().map(|o| o.sojourn_cycles()).collect();
            TenantReport {
                tenant,
                completed: jobs.len() as u64,
                rejected: rejected.get(&tenant).copied().unwrap_or(0),
                failed: failed.iter().filter(|f| f.tenant == tenant).count() as u64,
                retries: retries.get(&tenant).copied().unwrap_or(0),
                deadline_misses: jobs.iter().filter(|o| o.deadline_missed).count() as u64,
                service_cycles: service.iter().sum(),
                throughput_per_mcycle: if makespan == 0 {
                    0.0
                } else {
                    jobs.len() as f64 * 1.0e6 / makespan as f64
                },
                queue: LatencySummary::of(&mut queue),
                service: LatencySummary::of(&mut service),
                sojourn: LatencySummary::of(&mut sojourn),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[42], 99), 42);
        assert_eq!(percentile(&[], 50), 0);
        // Small-sample nearest rank: ceil(0.5 * 2) = 1st element.
        assert_eq!(percentile(&[10, 20], 50), 10);
        assert_eq!(percentile(&[10, 20], 95), 20);
    }

    #[test]
    fn reports_split_by_tenant_and_count_rejects() {
        use crate::resilience::{FailReason, JobFault};
        let digest = EntryDigest { hash: 1, count: 1 };
        let job =
            |id: u32, tenant: u32, arrival: u64, start: u64, end: u64, service: u64| JobOutcome {
                id,
                tenant,
                label: "spmv".into(),
                arrival,
                first_start: start,
                completion: end,
                service_cycles: service,
                preemptions: 0,
                retries: 0,
                deadline_missed: false,
                digest,
            };
        let outcomes = vec![
            job(0, 0, 0, 10, 110, 100),
            job(1, 0, 50, 150, 260, 100),
            job(2, 1, 0, 200, 300, 90),
        ];
        let mut rejected = BTreeMap::new();
        rejected.insert(1u32, 2u64);
        let failed = vec![FailedJob {
            id: 9,
            tenant: 2,
            label: "spmv".into(),
            arrival: 40,
            attempts: 4,
            reason: FailReason::RetryBudgetExhausted {
                budget: 3,
                last: JobFault::SlotCrash,
            },
        }];
        let mut retries = BTreeMap::new();
        retries.insert(0u32, 1u64);
        let reports = tenant_reports(&outcomes, &failed, &rejected, &retries, 1_000_000);
        assert_eq!(reports.len(), 3, "failed-only tenants get a report too");
        let t0 = &reports[0];
        assert_eq!((t0.tenant, t0.completed, t0.rejected), (0, 2, 0));
        assert_eq!((t0.failed, t0.retries), (0, 1));
        assert_eq!(t0.service_cycles, 200);
        assert_eq!(t0.sojourn.p50, 110);
        assert_eq!(t0.queue.p50, 10);
        assert!((t0.throughput_per_mcycle - 2.0).abs() < 1e-9);
        let t1 = &reports[1];
        assert_eq!((t1.tenant, t1.completed, t1.rejected), (1, 1, 2));
        assert_eq!(t1.sojourn.p99, 300);
        let t2 = &reports[2];
        assert_eq!((t2.tenant, t2.completed, t2.failed), (2, 0, 1));
    }

    #[test]
    fn deadline_misses_aggregate_per_tenant() {
        let digest = EntryDigest { hash: 0, count: 0 };
        let mk = |id: u32, missed: bool| JobOutcome {
            id,
            tenant: 0,
            label: "spmv".into(),
            arrival: 0,
            first_start: 0,
            completion: 100,
            service_cycles: 50,
            preemptions: 0,
            retries: 0,
            deadline_missed: missed,
            digest,
        };
        let outcomes = vec![mk(0, true), mk(1, false), mk(2, true)];
        let reports = tenant_reports(
            &outcomes,
            &[],
            &BTreeMap::new(),
            &BTreeMap::new(),
            1_000_000,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].deadline_misses, 2);
    }
}
