//! Tenant-selection policies for the serving scheduler.
//!
//! The server asks the policy one question — "which backlogged tenant
//! runs next?" — and reports back the cycles each dispatch consumed.
//! Round-robin rotates over the backlogged tenants; weighted-fair is
//! stride scheduling: each tenant owns a virtual *pass* that advances by
//! `cycles / weight`, and the smallest pass runs next, so long-run CPU
//! share converges to the weight ratio regardless of job sizes.

use std::collections::BTreeMap;

/// Which scheduling policy the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// Rotate over backlogged tenants, one dispatch each.
    RoundRobin,
    /// Stride scheduling by tenant weight.
    WeightedFair,
    /// Earliest-deadline-first: the backlogged tenant whose most urgent
    /// eligible job has the earliest deadline runs next (deadline-less
    /// jobs sort last; ties break on the lowest tenant id). The server
    /// consults [`PolicyState::pick_edf`] for this policy.
    Edf,
}

impl Policy {
    /// Stable display name used in reports and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round_robin",
            Policy::WeightedFair => "weighted_fair",
            Policy::Edf => "edf",
        }
    }

    /// Parses a policy label (`"round_robin"` / `"weighted_fair"` /
    /// `"edf"`, with `"rr"` / `"wf"` shorthands).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round_robin" | "rr" => Some(Policy::RoundRobin),
            "weighted_fair" | "wf" => Some(Policy::WeightedFair),
            "edf" | "earliest_deadline" => Some(Policy::Edf),
            _ => None,
        }
    }
}

/// Fixed-point scale of one stride unit (cycles × SCALE / weight keeps
/// integer precision for small weights without overflow for realistic
/// cycle counts).
const STRIDE_SCALE: u64 = 1 << 10;

/// Mutable policy state: the rotation cursor and the tenants' passes.
#[derive(Debug)]
pub struct PolicyState {
    policy: Policy,
    /// Last tenant round-robin dispatched (rotation resumes after it).
    rr_last: Option<u32>,
    /// Stride pass per tenant; lazily initialized to the current minimum
    /// so a late-arriving tenant cannot monopolize the machine catching up.
    passes: BTreeMap<u32, u64>,
}

impl PolicyState {
    /// Fresh state for `policy`.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            rr_last: None,
            passes: BTreeMap::new(),
        }
    }

    /// The policy this state drives.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Picks the next tenant out of `backlogged` (sorted, deduplicated,
    /// non-empty tenant ids with queued work). Returns `None` only when
    /// `backlogged` is empty.
    pub fn pick(&mut self, backlogged: &[u32]) -> Option<u32> {
        if backlogged.is_empty() {
            return None;
        }
        let choice = match self.policy {
            // Without deadline information EDF degenerates to rotation;
            // the server passes deadlines through `pick_edf` instead.
            Policy::RoundRobin | Policy::Edf => match self.rr_last {
                // First backlogged tenant strictly after the last pick,
                // wrapping to the smallest.
                Some(last) => backlogged
                    .iter()
                    .copied()
                    .find(|&t| t > last)
                    .unwrap_or(backlogged[0]),
                None => backlogged[0],
            },
            Policy::WeightedFair => {
                let floor = backlogged
                    .iter()
                    .filter_map(|t| self.passes.get(t).copied())
                    .min()
                    .unwrap_or(0);
                // Min pass wins; BTreeMap order makes the tie-break the
                // lowest tenant id, deterministically.
                backlogged
                    .iter()
                    .copied()
                    .min_by_key(|t| *self.passes.entry(*t).or_insert(floor))
                    .expect("backlogged is non-empty")
            }
        };
        self.rr_last = Some(choice);
        Some(choice)
    }

    /// Picks the next tenant out of `backlogged` pairs of
    /// `(tenant, earliest eligible deadline)` — deadline-less jobs are
    /// passed as `u64::MAX`. Earliest deadline wins; ties break on the
    /// lowest tenant id, deterministically. Returns `None` only when
    /// `backlogged` is empty.
    pub fn pick_edf(&mut self, backlogged: &[(u32, u64)]) -> Option<u32> {
        let choice = backlogged
            .iter()
            .copied()
            .min_by_key(|&(t, d)| (d, t))
            .map(|(t, _)| t)?;
        self.rr_last = Some(choice);
        Some(choice)
    }

    /// Charges `cycles` of service at `weight` to `tenant` (advances its
    /// stride pass). Round-robin ignores the charge.
    pub fn charge(&mut self, tenant: u32, weight: u32, cycles: u64) {
        if self.policy == Policy::WeightedFair {
            let stride = cycles.saturating_mul(STRIDE_SCALE) / u64::from(weight.max(1));
            *self.passes.entry(tenant).or_insert(0) += stride.max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_and_wraps() {
        let mut p = PolicyState::new(Policy::RoundRobin);
        let b = [1, 3, 7];
        assert_eq!(p.pick(&b), Some(1));
        assert_eq!(p.pick(&b), Some(3));
        assert_eq!(p.pick(&b), Some(7));
        assert_eq!(p.pick(&b), Some(1), "must wrap");
        // A tenant draining out of the backlog is skipped.
        assert_eq!(p.pick(&[3, 7]), Some(3));
        assert_eq!(p.pick(&[]), None);
    }

    #[test]
    fn weighted_fair_converges_to_weight_ratio() {
        let mut p = PolicyState::new(Policy::WeightedFair);
        let weights = |t: u32| if t == 1 { 3 } else { 1 };
        let mut share = BTreeMap::new();
        for _ in 0..400 {
            let t = p.pick(&[1, 2]).expect("backlogged");
            *share.entry(t).or_insert(0u64) += 1000;
            p.charge(t, weights(t), 1000);
        }
        let (a, b) = (share[&1] as f64, share[&2] as f64);
        let ratio = a / b;
        assert!(
            (2.5..3.5).contains(&ratio),
            "3:1 weights must yield ~3:1 service, got {ratio:.2}"
        );
    }

    #[test]
    fn edf_picks_earliest_deadline_with_deterministic_ties() {
        let mut p = PolicyState::new(Policy::Edf);
        assert_eq!(p.pick_edf(&[]), None);
        assert_eq!(p.pick_edf(&[(4, 900), (1, 500), (2, 700)]), Some(1));
        // Deadline-less tenants (u64::MAX) lose to any real deadline.
        assert_eq!(p.pick_edf(&[(0, u64::MAX), (3, 9_000)]), Some(3));
        // Equal deadlines: lowest tenant id, deterministically.
        assert_eq!(p.pick_edf(&[(5, 100), (2, 100)]), Some(2));
        assert_eq!(Policy::parse("edf"), Some(Policy::Edf));
        assert_eq!(Policy::Edf.label(), "edf");
    }

    #[test]
    fn late_arrival_starts_at_the_current_floor() {
        let mut p = PolicyState::new(Policy::WeightedFair);
        for _ in 0..50 {
            let t = p.pick(&[1]).expect("backlogged");
            p.charge(t, 1, 10_000);
        }
        // Tenant 2 arrives with zero history; its pass initializes to the
        // backlog floor, so it cannot starve tenant 1 "catching up".
        let mut consecutive_2 = 0u32;
        let mut max_consecutive_2 = 0u32;
        for _ in 0..100 {
            let t = p.pick(&[1, 2]).expect("backlogged");
            if t == 2 {
                consecutive_2 += 1;
                max_consecutive_2 = max_consecutive_2.max(consecutive_2);
            } else {
                consecutive_2 = 0;
            }
            p.charge(t, 1, 10_000);
        }
        assert!(
            max_consecutive_2 <= 2,
            "late arrival must interleave, ran {max_consecutive_2} back-to-back"
        );
    }
}
