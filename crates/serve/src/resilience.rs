//! Fault-domain resilience for the serving layer.
//!
//! Each [`ServedCore`](tmu_sim::ServedCore) slot is a fault domain: a
//! crash, a watchdog-caught hang, or a TMU-unserviceable degrade takes
//! out the engine incarnation on it, and the *scheduler* — not the
//! engine — must recover. This module holds the declarative knobs
//! ([`ResilienceConfig`]) and the typed vocabulary of what happened
//! ([`JobFault`], [`FailReason`], [`FailedJob`], [`ShedCounts`]), plus
//! the per-tenant [`CircuitBreaker`].
//!
//! The contract the chaos differential grid pins: no silent loss, ever.
//! Every admitted job either completes with an outQ digest bit-identical
//! to its solo replay, or lands in a typed terminal state, and the
//! conservation invariant `arrivals = completed + shed + failed` holds
//! exactly.

use std::fmt;

use tmu_sim::FaultSpec;
pub use tmu_sim::{SlotFaultEvent, SlotFaultKind, SlotFaultPlan, SlotFaultSpec, SlotFaultStats};

/// Resilience knobs of a serving run. Plain `Copy` data riding inside
/// [`ServeConfig`](crate::ServeConfig); the default disables every fault
/// source and keeps scheduling behaviour byte-identical to the
/// pre-resilience server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Slot-level chaos schedule (crash / hang / degrade per slot).
    pub slot_faults: SlotFaultSpec,
    /// Engine-level fault injection applied to every dispatched job; the
    /// seed is re-derived per retry attempt ([`FaultSpec::for_attempt`]).
    pub job_faults: FaultSpec,
    /// Retries a faulted job gets beyond its first attempt before it is
    /// declared [`FailedJob`] (terminal, typed).
    pub retry_budget: u32,
    /// Base of the deterministic exponential backoff, in cycles: attempt
    /// `n` (1-based) waits `min(base << (n-1), cap)` before it is
    /// eligible to run again.
    pub backoff_base: u64,
    /// Ceiling of the exponential backoff, in cycles.
    pub backoff_cap: u64,
    /// Cycles of service between periodic job-level checkpoints; 0
    /// disables checkpointing (a faulted job restarts from scratch).
    pub checkpoint_every: u64,
    /// Global admission cap: when the total queued-job count across all
    /// tenants reaches it, further arrivals are shed as `saturated`.
    /// 0 disables the cap.
    pub admit_cap: usize,
    /// Consecutive job faults of one tenant that trip its circuit
    /// breaker; 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Cycles a tripped breaker stays open (the tenant's arrivals are
    /// shed as `circuit_open` meanwhile).
    pub breaker_open_cycles: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            slot_faults: SlotFaultSpec::none(),
            job_faults: FaultSpec::none(),
            retry_budget: 3,
            backoff_base: 2_000,
            backoff_cap: 64_000,
            checkpoint_every: 0,
            admit_cap: 0,
            breaker_threshold: 0,
            breaker_open_cycles: 50_000,
        }
    }
}

impl ResilienceConfig {
    /// Backoff before attempt `attempt` (1-based count of completed
    /// attempts) may run again: deterministic exponential with a cap.
    pub fn backoff_after(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.backoff_base
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap.max(self.backoff_base))
    }

    /// Whether any fault source is configured (slot chaos or engine
    /// injection).
    pub fn chaos_configured(&self) -> bool {
        self.slot_faults.is_active() || self.job_faults.is_active()
    }
}

/// What killed one attempt of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFault {
    /// The serving slot crashed under the job.
    SlotCrash,
    /// The slot hung; the progress watchdog caught it.
    SlotHang,
    /// The TMU engine degraded to unserviceable mid-job.
    Degraded,
}

impl JobFault {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            JobFault::SlotCrash => "slot_crash",
            JobFault::SlotHang => "slot_hang",
            JobFault::Degraded => "degraded",
        }
    }
}

impl fmt::Display for JobFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a job landed in the terminal `Failed` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Every attempt in the retry budget faulted.
    RetryBudgetExhausted {
        /// The configured budget (retries beyond the first attempt).
        budget: u32,
        /// The fault that killed the final attempt.
        last: JobFault,
    },
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::RetryBudgetExhausted { budget, last } => {
                write!(f, "retry budget ({budget}) exhausted; last fault: {last}")
            }
        }
    }
}

/// A job that terminally failed — the typed end state the no-silent-loss
/// guarantee demands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedJob {
    /// Job id from the trace.
    pub id: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Report label of the job's shape.
    pub label: String,
    /// Arrival cycle.
    pub arrival: u64,
    /// Attempts consumed (first run + retries).
    pub attempts: u32,
    /// Why the job failed.
    pub reason: FailReason,
}

/// Shed arrivals of one tenant, by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCounts {
    /// The tenant's bounded queue was full.
    pub queue_full: u64,
    /// The tenant's circuit breaker was open.
    pub circuit_open: u64,
    /// The global admission cap was reached.
    pub saturated: u64,
}

impl ShedCounts {
    /// Total shed arrivals across all causes.
    pub fn total(&self) -> u64 {
        self.queue_full + self.circuit_open + self.saturated
    }
}

/// Per-tenant circuit breaker: after `threshold` consecutive job faults
/// the breaker opens for a cooldown window, during which the tenant's
/// arrivals are shed at admission. A completed job closes the count; a
/// cooled-down breaker re-closes on its next consultation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CircuitBreaker {
    consecutive: u32,
    open_until: Option<u64>,
}

impl CircuitBreaker {
    /// Whether the breaker is open at `now` (re-closes itself once the
    /// cooldown has elapsed).
    pub fn is_open(&mut self, now: u64) -> bool {
        if let Some(t) = self.open_until {
            if now >= t {
                self.open_until = None;
                self.consecutive = 0;
            }
        }
        self.open_until.is_some()
    }

    /// Records one job fault of the tenant. Returns `true` when this
    /// fault tripped the breaker open (the caller counts/traces opens).
    /// A `threshold` of 0 disables the breaker entirely.
    pub fn record_fault(&mut self, now: u64, threshold: u32, open_cycles: u64) -> bool {
        if threshold == 0 {
            return false;
        }
        self.consecutive += 1;
        if self.consecutive >= threshold && self.open_until.is_none() {
            self.open_until = Some(now + open_cycles);
            self.consecutive = 0;
            return true;
        }
        false
    }

    /// Records one completed job of the tenant (resets the consecutive
    /// fault count).
    pub fn record_success(&mut self) {
        if self.open_until.is_none() {
            self.consecutive = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = ResilienceConfig {
            backoff_base: 1_000,
            backoff_cap: 6_000,
            ..ResilienceConfig::default()
        };
        assert_eq!(cfg.backoff_after(1), 1_000);
        assert_eq!(cfg.backoff_after(2), 2_000);
        assert_eq!(cfg.backoff_after(3), 4_000);
        assert_eq!(cfg.backoff_after(4), 6_000, "capped");
        assert_eq!(cfg.backoff_after(60), 6_000, "huge attempts stay capped");
        // Attempt 0 is clamped into attempt-1 territory.
        assert_eq!(cfg.backoff_after(0), 1_000);
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let mut b = CircuitBreaker::default();
        assert!(!b.record_fault(100, 3, 1_000));
        assert!(!b.record_fault(200, 3, 1_000));
        assert!(!b.is_open(250));
        assert!(b.record_fault(300, 3, 1_000), "third fault trips");
        assert!(b.is_open(400));
        assert!(b.is_open(1_299));
        assert!(!b.is_open(1_300), "cooldown elapsed");
        // After cooldown the count restarts from zero.
        assert!(!b.record_fault(1_400, 3, 1_000));
        b.record_success();
        assert!(!b.record_fault(1_500, 3, 1_000));
        assert!(!b.record_fault(1_600, 3, 1_000));
        assert!(b.record_fault(1_700, 3, 1_000), "success reset the count");
    }

    #[test]
    fn breaker_threshold_zero_never_trips() {
        let mut b = CircuitBreaker::default();
        for i in 0..100 {
            assert!(!b.record_fault(i, 0, 1_000));
        }
        assert!(!b.is_open(1_000));
    }

    #[test]
    fn default_config_disables_every_fault_source() {
        let cfg = ResilienceConfig::default();
        assert!(!cfg.chaos_configured());
        assert_eq!(cfg.checkpoint_every, 0);
        assert_eq!(cfg.admit_cap, 0);
        assert_eq!(cfg.breaker_threshold, 0);
        assert!(cfg.retry_budget > 0, "retries stay armed for genuine hangs");
    }
}
