//! The serving loop: admission, scheduling, and preemptive TMU
//! virtualization over a pool of simulated cores.
//!
//! The server is a deterministic discrete-event simulation. Each serving
//! slot is a [`ServedCore`] — a persistent core + private memory
//! hierarchy whose clock survives across jobs. The loop always advances
//! the slot whose clock is furthest behind, admits trace arrivals up to
//! that slot's time into bounded per-tenant queues, asks the policy which
//! backlogged tenant runs, and drives the chosen job for one quantum.
//!
//! Preemption is the §5.6 external context switch: the engine drains to
//! its precise TG-step quiesce point ([`TmuAccelerator::quiesce`]), the
//! slot flushes the sealed chunk's host ops, and the architectural
//! context parks in the tenant's queue. Resumption rebuilds an engine
//! from the snapshot ([`TmuAccelerator::resume_from`]) with the same
//! callback handler, so the job's digest spans incarnations.
//!
//! One invariant the scheduler *must* uphold (documented on
//! [`TmuAccelerator::steps_committed`]): never preempt a job before it
//! has committed at least one TG step since its last resume — replay
//! would otherwise reconstruct the same point forever under small
//! quanta. The loop therefore only parks a job that made progress;
//! otherwise it grants another quantum.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

use tmu::context::ContextSnapshot;
use tmu::{OutQStats, TmuAccelerator, TmuConfig, TmuError};
use tmu_apps::{AppExec, AppSpec, StageBuild, StageCaches, StageRecord, TenantCacheStats};
use tmu_sim::{
    MemSysConfig, ServedCore, SimError, SlotFaultKind, SlotFaultPlan, SlotFaultStats, SlotStats,
};
use tmu_trace::EventKind;

use crate::build::{BuildCache, BuiltJob};
use crate::digest::{DigestHandler, EntryDigest};
use crate::job::JobSpec;
use crate::metrics::JobOutcome;
use crate::policy::{Policy, PolicyState};
use crate::resilience::{
    CircuitBreaker, FailReason, FailedJob, JobFault, ResilienceConfig, ShedCounts,
};

/// Serving-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Serving slots (simulated cores) in the pool.
    pub slots: usize,
    /// Scheduling quantum in cycles.
    pub quantum: u64,
    /// Bounded per-tenant admission queue capacity; arrivals beyond it
    /// are rejected and counted.
    pub queue_cap: usize,
    /// Context-switch penalty charged to the slot on every dispatch of a
    /// previously-parked context (save/restore is not free).
    pub ctx_switch_cycles: u64,
    /// Scheduling policy.
    pub policy: Policy,
    /// Per-quantum no-progress watchdog window (cycles).
    pub watchdog: u64,
    /// Resilience knobs: chaos injection, retry budget/backoff,
    /// checkpoint cadence, admission control, circuit breaker. The
    /// default disables every fault source.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            slots: 2,
            quantum: 40_000,
            queue_cap: 64,
            ctx_switch_cycles: 400,
            policy: Policy::RoundRobin,
            watchdog: 10_000_000,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// What the serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Completed jobs, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Terminally failed jobs (retry budget exhausted), in failure order.
    pub failed: Vec<FailedJob>,
    /// Rejected (shed) arrivals per tenant, all causes summed.
    pub rejected: BTreeMap<u32, u64>,
    /// Shed arrivals per tenant, broken down by cause.
    pub shed: BTreeMap<u32, ShedCounts>,
    /// Retry attempts per tenant (re-dispatches after a job fault).
    pub retries: BTreeMap<u32, u64>,
    /// Completed jobs that finished past their deadline.
    pub deadline_misses: u64,
    /// Periodic job-level checkpoints saved.
    pub checkpoints: u64,
    /// Cycles spent saving checkpoints (drain + context penalty), per
    /// tenant.
    pub checkpoint_cycles: BTreeMap<u32, u64>,
    /// Times a tenant's circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Slot faults observed across the run (injected chaos plus genuine
    /// watchdog hangs and engine degrades).
    pub slot_faults: SlotFaultStats,
    /// Cycle the last slot went quiet (max slot clock).
    pub makespan: u64,
    /// Scheduler-initiated preemptions (quiesce + park).
    pub preemptions: u64,
    /// Builds shared via the same-shape batch cache.
    pub build_hits: u64,
    /// Distinct shapes built.
    pub build_misses: u64,
    /// Job builds evicted under the `TMU_BUILD_CACHE_CAP` bound.
    pub build_evictions: u64,
    /// Per-tenant two-level stage-cache counters (application jobs).
    pub tenant_cache: BTreeMap<u32, TenantCacheStats>,
    /// Stage-cache evictions `(tensors, programs)` under the same bound.
    pub stage_evictions: (u64, u64),
    /// Per-slot statistics (busy/idle cycles, reboots, tenant
    /// attribution).
    pub slots: Vec<SlotStats>,
}

impl ServeOutcome {
    /// The digest of job `id`, if it completed.
    pub fn digest_of(&self, id: u32) -> Option<EntryDigest> {
        self.outcomes.iter().find(|o| o.id == id).map(|o| o.digest)
    }

    /// Total shed arrivals across all tenants and causes.
    pub fn shed_total(&self) -> u64 {
        self.shed.values().map(ShedCounts::total).sum()
    }

    /// Total retry attempts across all tenants.
    pub fn retries_total(&self) -> u64 {
        self.retries.values().sum()
    }

    /// Total cycles spent saving checkpoints.
    pub fn checkpoint_cycles_total(&self) -> u64 {
        self.checkpoint_cycles.values().sum()
    }

    /// The conservation invariant the chaos grid pins: every arrival is
    /// accounted for exactly once — completed, shed at admission, or
    /// terminally failed. No silent loss, ever.
    pub fn conserves(&self, arrivals: usize) -> bool {
        self.outcomes.len() as u64 + self.failed.len() as u64 + self.shed_total() == arrivals as u64
    }

    /// A tenant's two-level stage-cache hit rate (0.0 if it ran no app
    /// jobs).
    pub fn cache_hit_rate(&self, tenant: u32) -> f64 {
        self.tenant_cache
            .get(&tenant)
            .map(TenantCacheStats::hit_rate)
            .unwrap_or(0.0)
    }
}

/// Serving-layer error.
#[derive(Debug)]
pub enum ServeError {
    /// A job failed to build (tensor generation / program lowering).
    Build {
        /// Job id from the trace.
        job: u32,
        /// Build error detail.
        detail: String,
    },
    /// The simulation wedged or exceeded its cycle limit.
    Sim(SimError),
    /// The engine rejected a quiesce/resume transition.
    Engine(TmuError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Build { job, detail } => write!(f, "job {job} failed to build: {detail}"),
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<TmuError> for ServeError {
    fn from(e: TmuError) -> Self {
        ServeError::Engine(e)
    }
}

/// A parked job context: everything needed to resume on any slot.
struct Parked {
    snap: ContextSnapshot,
    handler: DigestHandler,
    stats: Arc<Mutex<OutQStats>>,
}

/// A durable job-level checkpoint: unlike [`Parked`] (whose stats handle
/// is live and keeps mutating), a checkpoint owns a frozen *copy* of the
/// outQ stats, so a restart after a crash resumes from exactly the
/// checkpointed state — not from whatever the dead incarnation mutated
/// afterwards.
struct Checkpoint {
    snap: ContextSnapshot,
    handler: DigestHandler,
    stats: OutQStats,
}

/// An application job's serving-side state. The engine runs one DAG
/// stage at a time; `handler` is the job's cumulative digest as of the
/// last completed stage boundary — the durable restart point. App jobs
/// never take mid-stage durable checkpoints: a fault restarts the
/// *stage* (from `handler`), never the whole job.
struct AppWork {
    exec: AppExec,
    /// The currently-dispatched stage build, if one is in flight (it
    /// survives faults — the restart re-dispatches the same build).
    stage: Option<StageBuild>,
    /// Cumulative digest at the last stage boundary.
    handler: DigestHandler,
    /// Engine cycles accumulated by the in-flight stage (across
    /// preemptions and retry attempts).
    stage_cycles: u64,
}

/// What a waiting job runs: a single compiled program, or a multi-stage
/// application pipeline.
enum Work {
    Single(Arc<BuiltJob>),
    App(Box<AppWork>),
}

impl Work {
    fn label(&self) -> String {
        match self {
            Work::Single(b) => b.label.clone(),
            Work::App(a) => a.exec.label(),
        }
    }
}

/// A job waiting in (or parked back into) a tenant queue.
struct Waiting {
    spec: JobSpec,
    work: Work,
    parked: Option<Parked>,
    checkpoint: Option<Checkpoint>,
    first_start: Option<u64>,
    service_cycles: u64,
    preemptions: u32,
    /// 0-based attempt ordinal; bumps on every serving-visible fault and
    /// re-derives the engine fault seed ([`tmu_sim::FaultSpec::for_attempt`]).
    attempt: u32,
    /// Backoff gate: the job may not dispatch before this cycle.
    eligible_at: u64,
    /// Service cycles accumulated since the last checkpoint.
    since_ckpt: u64,
}

/// A job currently occupying a slot.
struct Running {
    waiting: Waiting,
    engine: TmuAccelerator<DigestHandler>,
    /// Committed-step count at the last dispatch — the progress floor the
    /// preemption guard compares against.
    resumed_at: u64,
}

struct Slot {
    core: ServedCore,
    running: Option<Running>,
    /// This slot's chaos schedule, if any.
    chaos: Option<SlotFaultPlan>,
    /// No work, no future arrivals: excluded from the event loop.
    retired: bool,
}

/// Mutable resilience bookkeeping of one serving run.
#[derive(Default)]
struct ResilState {
    breakers: BTreeMap<u32, CircuitBreaker>,
    failed: Vec<FailedJob>,
    retries: BTreeMap<u32, u64>,
    shed: BTreeMap<u32, ShedCounts>,
    deadline_misses: u64,
    checkpoints: u64,
    ckpt_cycles: BTreeMap<u32, u64>,
    breaker_opens: u64,
    slot_faults: SlotFaultStats,
}

/// The multi-tenant serving engine. Owns the build cache, the policy
/// state, and the slot pool for one [`Server::run`].
pub struct Server {
    cfg: ServeConfig,
    cache: BuildCache,
    scripted: BTreeMap<usize, SlotFaultPlan>,
}

impl Server {
    /// A server with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        Self {
            cfg,
            cache: BuildCache::new(),
            scripted: BTreeMap::new(),
        }
    }

    /// Installs a scripted chaos plan on slot `slot`, overriding the
    /// rate-based plan the configuration would derive. Tests pin exact
    /// failure points with this. Plans are consumed by the next
    /// [`Server::run`].
    pub fn inject_slot_plan(&mut self, slot: usize, plan: SlotFaultPlan) {
        self.scripted.insert(slot, plan);
    }

    /// Serves `trace` to completion and reports what happened.
    ///
    /// The loop is single-threaded and consults no ambient state, so the
    /// outcome is a pure function of the configuration and the trace.
    pub fn run(&mut self, mut trace: Vec<JobSpec>) -> Result<ServeOutcome, ServeError> {
        trace.sort_by_key(|j| (j.arrival, j.id));
        let quantum = self.cfg.quantum.max(1);
        let rcfg = self.cfg.resilience;

        let mut slots: Vec<Slot> = (0..self.cfg.slots.max(1))
            .map(|i| Slot {
                core: {
                    let mut c = ServedCore::new(
                        tmu_sim::CoreConfig::neoverse_n1_like(),
                        MemSysConfig::table5(1),
                    );
                    c.set_watchdog(self.cfg.watchdog);
                    c.set_slot(i);
                    c
                },
                running: None,
                chaos: self
                    .scripted
                    .remove(&i)
                    .or_else(|| SlotFaultPlan::from_spec(rcfg.slot_faults, i as u64)),
                retired: false,
            })
            .collect();

        let mut policy = PolicyState::new(self.cfg.policy);
        let mut queues: BTreeMap<u32, VecDeque<Waiting>> = BTreeMap::new();
        let mut state = ResilState::default();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut preemptions = 0u64;
        let mut next_arrival = 0usize;

        // Event selection: the live slot furthest behind in simulated
        // time runs next (ties break on slot index — deterministic).
        while let Some(s) = slots
            .iter()
            .enumerate()
            .filter(|(_, sl)| !sl.retired)
            .min_by_key(|(i, sl)| (sl.core.now(), *i))
            .map(|(i, _)| i)
        {
            let now = slots[s].core.now();
            admit(
                &trace,
                &mut next_arrival,
                now,
                &mut self.cache,
                &mut queues,
                &mut state,
                &rcfg,
                self.cfg.queue_cap,
            )?;

            if slots[s].running.is_none() {
                match pick_tenant(&mut policy, self.cfg.policy, &queues, now) {
                    Some(tenant) => {
                        let queue = queues.get_mut(&tenant).expect("picked tenant has a queue");
                        let idx = eligible_index(queue, self.cfg.policy, now)
                            .expect("picked tenant had an eligible job");
                        let waiting = queue.remove(idx).expect("index in range");
                        self.dispatch(&mut slots[s], waiting)?;
                    }
                    None => {
                        // Nothing eligible: wake at the next arrival or
                        // the earliest backoff expiry, whichever is
                        // sooner; with neither, the slot is done.
                        let next_arr =
                            (next_arrival < trace.len()).then(|| trace[next_arrival].arrival);
                        let next_elig = queues
                            .values()
                            .flat_map(|q| q.iter().map(|w| w.eligible_at))
                            .filter(|&e| e > now)
                            .min();
                        match [next_arr, next_elig].into_iter().flatten().min() {
                            Some(wake) => slots[s].core.skip_idle_to(wake),
                            None => slots[s].retired = true,
                        }
                        continue;
                    }
                }
            }

            // Drive one quantum.
            let mut run = slots[s].running.take().expect("dispatched above");
            let tenant = run.waiting.spec.tenant;
            let out = match slots[s].core.drive(&mut run.engine, tenant, quantum) {
                Ok(out) => out,
                Err(SimError::Watchdog { window, .. }) => {
                    // A genuine wedge under serving is a slot hang: the
                    // incarnation is lost, the job retries (or fails
                    // typed), and the slot reboots.
                    let now = slots[s].core.now();
                    state.slot_faults.record(SlotFaultKind::Hang);
                    trace_event(now, EventKind::WatchdogFired, window);
                    fault_job(
                        &rcfg,
                        run.waiting,
                        JobFault::SlotHang,
                        now,
                        &mut queues,
                        &mut state,
                    );
                    slots[s].core.reboot(now + rcfg.slot_faults.reboot_cycles);
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            run.waiting.service_cycles += out.cycles;
            run.waiting.since_ckpt += out.cycles;
            if let Work::App(app) = &mut run.waiting.work {
                app.stage_cycles += out.cycles;
            }
            policy.charge(tenant, run.waiting.spec.weight, out.cycles);

            // A retired engine reports done, so check degradation before
            // trusting `finished`: the job did NOT complete — its TMU
            // became unserviceable and this incarnation is lost.
            if run.engine.retired().is_some() {
                let now = slots[s].core.now();
                state.slot_faults.record(SlotFaultKind::Degrade);
                slots[s].core.flush_inflight();
                fault_job(
                    &rcfg,
                    run.waiting,
                    JobFault::Degraded,
                    now,
                    &mut queues,
                    &mut state,
                );
                continue;
            }

            if out.finished {
                let now = slots[s].core.now();
                // An application stage draining is a stage boundary, not
                // necessarily job completion: fold the engine's digest
                // back into the app, materialize the stage output, and
                // either finish the job or requeue it for its next stage.
                let (waiting, digest) = if let Work::App(_) = run.waiting.work {
                    let Running {
                        mut waiting,
                        engine,
                        ..
                    } = run;
                    let jid = waiting.spec.id;
                    let Work::App(app) = &mut waiting.work else {
                        unreachable!("matched above")
                    };
                    app.handler = engine.into_handler();
                    app.stage = None;
                    trace_event(
                        now,
                        EventKind::StageDone,
                        (u64::from(tenant) << 32) | u64::from(jid),
                    );
                    let host = app
                        .exec
                        .complete_stage(app.stage_cycles)
                        .map_err(|detail| ServeError::Build { job: jid, detail })?;
                    app.stage_cycles = 0;
                    // The stage-boundary host phase (functional
                    // materialization + round-end dense work) runs on the
                    // slot, attributed to the tenant.
                    slots[s].core.charge_busy(tenant, host);
                    waiting.service_cycles += host;
                    if !app.exec.finished() {
                        // Stage boundaries are scheduling points: the job
                        // re-enters its tenant queue (keeping its FIFO
                        // position) and the policy repicks.
                        queues.entry(tenant).or_default().push_front(waiting);
                        continue;
                    }
                    let digest = app.handler.digest();
                    (waiting, digest)
                } else {
                    let digest = run.engine.handler().digest();
                    (run.waiting, digest)
                };
                let now = slots[s].core.now();
                trace_event(
                    now,
                    EventKind::TenantComplete,
                    (u64::from(tenant) << 32) | u64::from(waiting.spec.id),
                );
                let deadline_missed = waiting.spec.deadline.is_some_and(|d| now > d);
                if deadline_missed {
                    state.deadline_misses += 1;
                    trace_event(
                        now,
                        EventKind::DeadlineMiss,
                        (u64::from(tenant) << 32) | u64::from(waiting.spec.id),
                    );
                }
                if rcfg.breaker_threshold > 0 {
                    state.breakers.entry(tenant).or_default().record_success();
                }
                outcomes.push(JobOutcome {
                    id: waiting.spec.id,
                    tenant,
                    label: waiting.work.label(),
                    arrival: waiting.spec.arrival,
                    first_start: waiting.first_start.unwrap_or(now),
                    completion: now,
                    service_cycles: waiting.service_cycles,
                    preemptions: waiting.preemptions,
                    retries: waiting.attempt,
                    deadline_missed,
                    digest,
                });
                continue;
            }

            // Chaos consult: one roll per completed quantum that left the
            // job unfinished on the slot.
            if let Some(kind) = slots[s].chaos.as_mut().and_then(SlotFaultPlan::on_quantum) {
                let reboot_cycles = slots[s]
                    .chaos
                    .as_ref()
                    .map(|p| p.spec().reboot_cycles)
                    .unwrap_or(0);
                state.slot_faults.record(kind);
                match kind {
                    SlotFaultKind::Crash => {
                        let now = slots[s].core.now();
                        trace_event(now, EventKind::SlotCrash, s as u64);
                        fault_job(
                            &rcfg,
                            run.waiting,
                            JobFault::SlotCrash,
                            now,
                            &mut queues,
                            &mut state,
                        );
                        slots[s].core.reboot(now + reboot_cycles);
                    }
                    SlotFaultKind::Hang => {
                        // The slot burns a full watchdog window before
                        // the hang is caught, then reboots like a crash.
                        let err = slots[s].core.hang(&run.engine, tenant);
                        let now = slots[s].core.now();
                        if let SimError::Watchdog { window, .. } = err {
                            trace_event(now, EventKind::WatchdogFired, window);
                        }
                        fault_job(
                            &rcfg,
                            run.waiting,
                            JobFault::SlotHang,
                            now,
                            &mut queues,
                            &mut state,
                        );
                        slots[s].core.reboot(now + reboot_cycles);
                    }
                    SlotFaultKind::Degrade => {
                        // The slot survives; only the incarnation dies.
                        let now = slots[s].core.now();
                        slots[s].core.flush_inflight();
                        fault_job(
                            &rcfg,
                            run.waiting,
                            JobFault::Degraded,
                            now,
                            &mut queues,
                            &mut state,
                        );
                    }
                }
                continue;
            }

            let progressed = run.engine.steps_committed() > run.resumed_at;

            // Periodic checkpoint: quiesce, snapshot, freeze the outQ
            // stats, and resume in place on the same slot. A later crash
            // restarts the job from here instead of from scratch.
            if rcfg.checkpoint_every > 0
                && run.waiting.since_ckpt >= rcfg.checkpoint_every
                && progressed
                // App jobs take durable restart points only at stage
                // boundaries; mid-stage snapshots stay live-park-only.
                && matches!(run.waiting.work, Work::Single(_))
            {
                let now = slots[s].core.now();
                let snap = run
                    .engine
                    .quiesce(now, 0, slots[s].core.mem_mut())
                    .map_err(ServeError::Engine)?;
                slots[s].core.drain(&mut run.engine, tenant)?;
                let stats = run.engine.stats_handle();
                let handler = run.engine.into_handler();
                let frozen = stats.lock().expect("outq stats lock").clone();
                let mut waiting = run.waiting;
                waiting.checkpoint = Some(Checkpoint {
                    snap: snap.clone(),
                    handler: handler.clone(),
                    stats: frozen,
                });
                waiting.since_ckpt = 0;
                waiting.parked = Some(Parked {
                    snap,
                    handler,
                    stats,
                });
                state.checkpoints += 1;
                let cost = (slots[s].core.now() - now) + self.cfg.ctx_switch_cycles;
                *state.ckpt_cycles.entry(tenant).or_insert(0) += cost;
                trace_event(
                    now,
                    EventKind::CheckpointSave,
                    (u64::from(tenant) << 32) | u64::from(waiting.spec.id),
                );
                self.dispatch(&mut slots[s], waiting)?;
                continue;
            }

            // Preemption decision. Admit up to the post-quantum clock
            // first so work that arrived mid-quantum counts as contention.
            let now = slots[s].core.now();
            admit(
                &trace,
                &mut next_arrival,
                now,
                &mut self.cache,
                &mut queues,
                &mut state,
                &rcfg,
                self.cfg.queue_cap,
            )?;
            let contended = queues
                .values()
                .any(|q| q.iter().any(|w| w.eligible_at <= now));
            if contended && progressed {
                let snap = run
                    .engine
                    .quiesce(now, 0, slots[s].core.mem_mut())
                    .map_err(ServeError::Engine)?;
                // Flush the sealed chunk's host-side ops before the
                // engine shell is torn down.
                slots[s].core.drain(&mut run.engine, tenant)?;
                let stats = run.engine.stats_handle();
                let handler = run.engine.into_handler();
                let mut waiting = run.waiting;
                waiting.preemptions += 1;
                // A park is a free checkpoint: the snapshot is durable,
                // so refresh the job's restart point while we have it.
                // App jobs restart only from stage boundaries, so their
                // park stays live-only (no durable checkpoint refresh).
                if matches!(waiting.work, Work::Single(_)) {
                    waiting.checkpoint = Some(Checkpoint {
                        snap: snap.clone(),
                        handler: handler.clone(),
                        stats: stats.lock().expect("outq stats lock").clone(),
                    });
                    waiting.since_ckpt = 0;
                }
                waiting.parked = Some(Parked {
                    snap,
                    handler,
                    stats,
                });
                preemptions += 1;
                trace_event(
                    slots[s].core.now(),
                    EventKind::TenantPreempt,
                    (u64::from(tenant) << 32) | u64::from(waiting.spec.id),
                );
                // Back to the *front* of the tenant's queue: a preempted
                // job keeps its place in the tenant's own FIFO.
                queues.entry(tenant).or_default().push_front(waiting);
            } else {
                // No contention (or no progress yet): grant another
                // quantum on the same slot.
                slots[s].running = Some(run);
            }
        }

        let makespan = slots.iter().map(|sl| sl.core.now()).max().unwrap_or(0);
        let rejected: BTreeMap<u32, u64> =
            state.shed.iter().map(|(&t, c)| (t, c.total())).collect();
        Ok(ServeOutcome {
            outcomes,
            failed: state.failed,
            rejected,
            shed: state.shed,
            retries: state.retries,
            deadline_misses: state.deadline_misses,
            checkpoints: state.checkpoints,
            checkpoint_cycles: state.ckpt_cycles,
            breaker_opens: state.breaker_opens,
            slot_faults: state.slot_faults,
            makespan,
            preemptions,
            build_hits: self.cache.hits(),
            build_misses: self.cache.misses(),
            build_evictions: self.cache.evictions(),
            tenant_cache: self.cache.stages().tenant_stats().clone(),
            stage_evictions: self.cache.stages().evictions(),
            slots: slots
                .into_iter()
                .map(|sl| sl.core.stats().clone())
                .collect(),
        })
    }

    /// Installs `waiting` on `slot` — fresh engine for a first dispatch,
    /// [`TmuAccelerator::resume_from`] for a parked context. For app jobs
    /// the engine runs the job's *current DAG stage*, built (or reused)
    /// through the two-level stage cache.
    fn dispatch(&mut self, slot: &mut Slot, mut waiting: Waiting) -> Result<(), ServeError> {
        let now = slot.core.now();
        // Context install penalty: the slot burns the switch cost before
        // the engine runs.
        slot.core.skip_idle_to(now + self.cfg.ctx_switch_cycles);
        // Each attempt re-derives its engine fault seed, so a retry does
        // not deterministically replay the exact fault that killed it.
        let faults = self.cfg.resilience.job_faults.for_attempt(waiting.attempt);
        let tenant = waiting.spec.tenant;
        let jid = waiting.spec.id;
        let parked = waiting.parked.take();
        let mut engine = match &mut waiting.work {
            Work::Single(built) => {
                let outq_base = job_outq_base(built, jid);
                match parked {
                    // A live parked context (preempt/checkpoint park)
                    // resumes as-is: its snapshot already carries this
                    // attempt's config.
                    Some(parked) => TmuAccelerator::resume_from(
                        &parked.snap,
                        Arc::clone(&built.image),
                        parked.handler,
                        outq_base,
                        parked.stats,
                    )?,
                    None => match &waiting.checkpoint {
                        // Restart after a fault: resume from the durable
                        // checkpoint with a fresh stats cell seeded from
                        // the frozen copy (the dead incarnation's live
                        // handle kept mutating past the save point).
                        Some(ckpt) => {
                            let mut snap = ckpt.snap.clone();
                            snap.config = snap.config.with_faults(faults);
                            TmuAccelerator::resume_from(
                                &snap,
                                Arc::clone(&built.image),
                                ckpt.handler.clone(),
                                outq_base,
                                Arc::new(Mutex::new(ckpt.stats.clone())),
                            )?
                        }
                        None => TmuAccelerator::try_new(
                            TmuConfig::paper().with_faults(faults),
                            Arc::clone(&built.program),
                            Arc::clone(&built.image),
                            DigestHandler::new(),
                            outq_base,
                        )?,
                    },
                }
            }
            Work::App(app) => {
                // Pin the current stage's build if it is not pinned yet —
                // a fault restart re-dispatches the same pinned build, so
                // the retried stage replays identically.
                if app.stage.is_none() {
                    let sb = app
                        .exec
                        .next_stage(self.cache.stages_mut(), tenant)
                        .map_err(|detail| ServeError::Build { job: jid, detail })?
                        .ok_or_else(|| ServeError::Build {
                            job: jid,
                            detail: "dispatched a finished app".into(),
                        })?;
                    trace_event(
                        slot.core.now(),
                        EventKind::StageStart,
                        (u64::from(tenant) << 32) | u64::from(jid),
                    );
                    app.stage = Some(sb);
                }
                let stage = app.stage.as_ref().expect("pinned above");
                let outq_base = stage.outq_base + (u64::from(jid) << 28);
                match parked {
                    // Mid-stage live park: resume the quiesced engine.
                    Some(parked) => TmuAccelerator::resume_from(
                        &parked.snap,
                        Arc::clone(&stage.image),
                        parked.handler,
                        outq_base,
                        parked.stats,
                    )?,
                    // Fresh dispatch or fault restart: the stage starts
                    // over, seeded with the digest accumulated through
                    // the last completed stage boundary.
                    None => TmuAccelerator::try_new(
                        TmuConfig::paper().with_faults(faults),
                        Arc::clone(&stage.program),
                        Arc::clone(&stage.image),
                        app.handler.clone(),
                        outq_base,
                    )?,
                }
            }
        };
        engine.set_tenant(waiting.spec.tenant);
        if waiting.first_start.is_none() {
            waiting.first_start = Some(slot.core.now());
        }
        trace_event(
            slot.core.now(),
            EventKind::TenantDispatch,
            (u64::from(waiting.spec.tenant) << 32) | u64::from(waiting.spec.id),
        );
        let resumed_at = engine.steps_committed();
        slot.running = Some(Running {
            waiting,
            engine,
            resumed_at,
        });
        Ok(())
    }
}

/// Each job writes its outQ chunks into a private window above the
/// shape's base, salted by job id, so concurrently-served clones of one
/// shape never alias chunk lines.
fn job_outq_base(built: &BuiltJob, job_id: u32) -> u64 {
    built.outq_base + (u64::from(job_id) << 28)
}

/// Asks the policy for the next tenant among those with at least one
/// *eligible* job (backoff expired). Every policy but EDF reduces to the
/// plain pick over backlogged tenant ids; EDF passes each tenant's
/// earliest eligible deadline through.
fn pick_tenant(
    policy: &mut PolicyState,
    which: Policy,
    queues: &BTreeMap<u32, VecDeque<Waiting>>,
    now: u64,
) -> Option<u32> {
    if which == Policy::Edf {
        let backlogged: Vec<(u32, u64)> = queues
            .iter()
            .filter_map(|(&t, q)| {
                q.iter()
                    .filter(|w| w.eligible_at <= now)
                    .map(|w| w.spec.deadline.unwrap_or(u64::MAX))
                    .min()
                    .map(|d| (t, d))
            })
            .collect();
        policy.pick_edf(&backlogged)
    } else {
        let backlogged: Vec<u32> = queues
            .iter()
            .filter(|(_, q)| q.iter().any(|w| w.eligible_at <= now))
            .map(|(&t, _)| t)
            .collect();
        policy.pick(&backlogged)
    }
}

/// Index of the job to pop from the picked tenant's queue. EDF takes the
/// eligible job with the earliest deadline (FIFO position breaks ties);
/// every other policy takes the first eligible job — which, with no
/// backoffs pending, is the front: exactly the pre-resilience pop.
fn eligible_index(queue: &VecDeque<Waiting>, which: Policy, now: u64) -> Option<usize> {
    match which {
        Policy::Edf => queue
            .iter()
            .enumerate()
            .filter(|(_, w)| w.eligible_at <= now)
            .min_by_key(|(i, w)| (w.spec.deadline.unwrap_or(u64::MAX), *i))
            .map(|(i, _)| i),
        _ => queue.iter().position(|w| w.eligible_at <= now),
    }
}

/// Handles a serving-visible fault on `waiting`'s current incarnation:
/// bumps the attempt, feeds the tenant's circuit breaker, and either
/// requeues the job behind a deterministic exponential backoff or — with
/// the retry budget exhausted — records a typed terminal failure. The
/// live parked context dies with the incarnation; only a durable
/// checkpoint survives into the retry.
fn fault_job(
    rcfg: &ResilienceConfig,
    mut waiting: Waiting,
    fault: JobFault,
    now: u64,
    queues: &mut BTreeMap<u32, VecDeque<Waiting>>,
    state: &mut ResilState,
) {
    let tenant = waiting.spec.tenant;
    waiting.parked = None;
    waiting.attempt += 1;
    if rcfg.breaker_threshold > 0
        && state.breakers.entry(tenant).or_default().record_fault(
            now,
            rcfg.breaker_threshold,
            rcfg.breaker_open_cycles,
        )
    {
        state.breaker_opens += 1;
        trace_event(now, EventKind::CircuitOpen, u64::from(tenant));
    }
    if waiting.attempt > rcfg.retry_budget {
        state.failed.push(FailedJob {
            id: waiting.spec.id,
            tenant,
            label: waiting.work.label(),
            arrival: waiting.spec.arrival,
            attempts: waiting.attempt,
            reason: FailReason::RetryBudgetExhausted {
                budget: rcfg.retry_budget,
                last: fault,
            },
        });
        return;
    }
    *state.retries.entry(tenant).or_insert(0) += 1;
    waiting.eligible_at = now + rcfg.backoff_after(waiting.attempt);
    waiting.since_ckpt = 0;
    trace_event(
        now,
        EventKind::JobRetry,
        (u64::from(tenant) << 32) | u64::from(waiting.spec.id),
    );
    // Back of the tenant's queue: a faulted job does not jump ahead of
    // work that arrived while it was burning its attempt.
    queues.entry(tenant).or_default().push_back(waiting);
}

/// Admits every trace arrival at or before `now` into its tenant queue,
/// building (or batch-sharing) the job on admission. Arrivals shed at
/// admission — open circuit breaker, global saturation, or full tenant
/// queue — are counted by cause; nothing is silently dropped.
#[allow(clippy::too_many_arguments)]
fn admit(
    trace: &[JobSpec],
    next_arrival: &mut usize,
    now: u64,
    cache: &mut BuildCache,
    queues: &mut BTreeMap<u32, VecDeque<Waiting>>,
    state: &mut ResilState,
    rcfg: &ResilienceConfig,
    queue_cap: usize,
) -> Result<(), ServeError> {
    while *next_arrival < trace.len() && trace[*next_arrival].arrival <= now {
        let spec = trace[*next_arrival].clone();
        *next_arrival += 1;
        if rcfg.breaker_threshold > 0 && state.breakers.entry(spec.tenant).or_default().is_open(now)
        {
            state.shed.entry(spec.tenant).or_default().circuit_open += 1;
            trace_event(now, EventKind::TenantReject, u64::from(spec.tenant));
            continue;
        }
        if rcfg.admit_cap > 0 {
            let queued: usize = queues.values().map(VecDeque::len).sum();
            if queued >= rcfg.admit_cap {
                state.shed.entry(spec.tenant).or_default().saturated += 1;
                trace_event(now, EventKind::TenantReject, u64::from(spec.tenant));
                continue;
            }
        }
        let queue = queues.entry(spec.tenant).or_default();
        if queue.len() >= queue_cap.max(1) {
            state.shed.entry(spec.tenant).or_default().queue_full += 1;
            trace_event(now, EventKind::TenantReject, u64::from(spec.tenant));
            continue;
        }
        let work = match spec.kind.app_spec() {
            // App jobs build lazily, stage by stage, through the
            // two-level stage cache; admission just validates the DAG
            // and seeds the pipeline's base tensors.
            Some(aspec) => Work::App(Box::new(AppWork {
                exec: AppExec::new(aspec, cache.stages_mut(), spec.tenant).map_err(|detail| {
                    ServeError::Build {
                        job: spec.id,
                        detail,
                    }
                })?,
                stage: None,
                handler: DigestHandler::new(),
                stage_cycles: 0,
            })),
            None => Work::Single(cache.get(&spec.kind).map_err(|detail| ServeError::Build {
                job: spec.id,
                detail,
            })?),
        };
        queue.push_back(Waiting {
            spec,
            work,
            parked: None,
            checkpoint: None,
            first_start: None,
            service_cycles: 0,
            preemptions: 0,
            attempt: 0,
            eligible_at: 0,
            since_ckpt: 0,
        });
        trace_event(now, EventKind::QueueDepth, queue.len() as u64);
    }
    Ok(())
}

/// Emits a serving-layer trace event when a tracer is installed.
fn trace_event(cycle: u64, kind: EventKind, payload: u64) {
    tmu_trace::with(|t| {
        let c = t.component("serve.sched");
        t.event(c, cycle, kind, payload);
    });
}

/// Runs `trace` through a fresh server and returns the outcome —
/// convenience for tests and benches.
pub fn serve(cfg: ServeConfig, trace: Vec<JobSpec>) -> Result<ServeOutcome, ServeError> {
    Server::new(cfg).run(trace)
}

/// Solo baseline: runs one job alone on a fresh slot with no quantum
/// bound and returns its digest — the reference stream the differential
/// tests compare preempted runs against.
pub fn solo_digest(built: &BuiltJob, job_id: u32) -> Result<EntryDigest, ServeError> {
    let mut slot = ServedCore::new(
        tmu_sim::CoreConfig::neoverse_n1_like(),
        MemSysConfig::table5(1),
    );
    let mut engine = TmuAccelerator::try_new(
        TmuConfig::paper(),
        Arc::clone(&built.program),
        Arc::clone(&built.image),
        DigestHandler::new(),
        job_outq_base(built, job_id),
    )?;
    let out = slot.drive(&mut engine, 0, u64::MAX)?;
    debug_assert!(out.finished);
    Ok(engine.handler().digest())
}

/// What [`solo_app`] observed: the reference stream and cost profile a
/// served app run must reproduce.
#[derive(Debug, Clone)]
pub struct AppSoloRun {
    /// Cumulative FNV digest across every stage of every iteration.
    pub digest: EntryDigest,
    /// Per-stage records (engine + host cycles, by round).
    pub records: Vec<StageRecord>,
    /// Iterations (DAG rounds) the app ran.
    pub iterations: u32,
    /// End-to-end slot cycles, engine and host phases included.
    pub cycles: u64,
}

/// Solo baseline for an application pipeline: runs the whole DAG alone
/// on a fresh slot, one unpreempted engine run per stage, carrying one
/// digest across all stages. The differential tests pin every served
/// completion of the same spec — preempted, faulted, or cache-shared —
/// bit-identical to this.
pub fn solo_app(spec: AppSpec) -> Result<AppSoloRun, ServeError> {
    let mut caches = StageCaches::new(0);
    let mut exec = AppExec::new(spec, &mut caches, 0)
        .map_err(|detail| ServeError::Build { job: 0, detail })?;
    let mut slot = ServedCore::new(
        tmu_sim::CoreConfig::neoverse_n1_like(),
        MemSysConfig::table5(1),
    );
    let mut handler = DigestHandler::new();
    while let Some(stage) = exec
        .next_stage(&mut caches, 0)
        .map_err(|detail| ServeError::Build { job: 0, detail })?
    {
        let t0 = slot.now();
        let mut engine = TmuAccelerator::try_new(
            TmuConfig::paper(),
            Arc::clone(&stage.program),
            Arc::clone(&stage.image),
            handler.clone(),
            stage.outq_base,
        )?;
        let out = slot.drive(&mut engine, 0, u64::MAX)?;
        debug_assert!(out.finished);
        handler = engine.into_handler();
        let host = exec
            .complete_stage(slot.now() - t0)
            .map_err(|detail| ServeError::Build { job: 0, detail })?;
        slot.charge_busy(0, host);
    }
    Ok(AppSoloRun {
        digest: handler.digest(),
        records: exec.records().to_vec(),
        iterations: exec.iterations(),
        cycles: slot.now(),
    })
}
