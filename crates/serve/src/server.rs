//! The serving loop: admission, scheduling, and preemptive TMU
//! virtualization over a pool of simulated cores.
//!
//! The server is a deterministic discrete-event simulation. Each serving
//! slot is a [`ServedCore`] — a persistent core + private memory
//! hierarchy whose clock survives across jobs. The loop always advances
//! the slot whose clock is furthest behind, admits trace arrivals up to
//! that slot's time into bounded per-tenant queues, asks the policy which
//! backlogged tenant runs, and drives the chosen job for one quantum.
//!
//! Preemption is the §5.6 external context switch: the engine drains to
//! its precise TG-step quiesce point ([`TmuAccelerator::quiesce`]), the
//! slot flushes the sealed chunk's host ops, and the architectural
//! context parks in the tenant's queue. Resumption rebuilds an engine
//! from the snapshot ([`TmuAccelerator::resume_from`]) with the same
//! callback handler, so the job's digest spans incarnations.
//!
//! One invariant the scheduler *must* uphold (documented on
//! [`TmuAccelerator::steps_committed`]): never preempt a job before it
//! has committed at least one TG step since its last resume — replay
//! would otherwise reconstruct the same point forever under small
//! quanta. The loop therefore only parks a job that made progress;
//! otherwise it grants another quantum.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

use tmu::context::ContextSnapshot;
use tmu::{OutQStats, TmuAccelerator, TmuConfig, TmuError};
use tmu_sim::{MemSysConfig, ServedCore, SimError, SlotStats};
use tmu_trace::EventKind;

use crate::build::{BuildCache, BuiltJob};
use crate::digest::{DigestHandler, EntryDigest};
use crate::job::JobSpec;
use crate::metrics::JobOutcome;
use crate::policy::{Policy, PolicyState};

/// Serving-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Serving slots (simulated cores) in the pool.
    pub slots: usize,
    /// Scheduling quantum in cycles.
    pub quantum: u64,
    /// Bounded per-tenant admission queue capacity; arrivals beyond it
    /// are rejected and counted.
    pub queue_cap: usize,
    /// Context-switch penalty charged to the slot on every dispatch of a
    /// previously-parked context (save/restore is not free).
    pub ctx_switch_cycles: u64,
    /// Scheduling policy.
    pub policy: Policy,
    /// Per-quantum no-progress watchdog window (cycles).
    pub watchdog: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            slots: 2,
            quantum: 40_000,
            queue_cap: 64,
            ctx_switch_cycles: 400,
            policy: Policy::RoundRobin,
            watchdog: 10_000_000,
        }
    }
}

/// What the serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Completed jobs, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Rejected arrivals per tenant.
    pub rejected: BTreeMap<u32, u64>,
    /// Cycle the last slot went quiet (max slot clock).
    pub makespan: u64,
    /// Scheduler-initiated preemptions (quiesce + park).
    pub preemptions: u64,
    /// Builds shared via the same-shape batch cache.
    pub build_hits: u64,
    /// Distinct shapes built.
    pub build_misses: u64,
    /// Per-slot statistics (busy/idle cycles, tenant attribution).
    pub slots: Vec<SlotStats>,
}

impl ServeOutcome {
    /// The digest of job `id`, if it completed.
    pub fn digest_of(&self, id: u32) -> Option<EntryDigest> {
        self.outcomes.iter().find(|o| o.id == id).map(|o| o.digest)
    }
}

/// Serving-layer error.
#[derive(Debug)]
pub enum ServeError {
    /// A job failed to build (tensor generation / program lowering).
    Build {
        /// Job id from the trace.
        job: u32,
        /// Build error detail.
        detail: String,
    },
    /// The simulation wedged or exceeded its cycle limit.
    Sim(SimError),
    /// The engine rejected a quiesce/resume transition.
    Engine(TmuError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Build { job, detail } => write!(f, "job {job} failed to build: {detail}"),
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<TmuError> for ServeError {
    fn from(e: TmuError) -> Self {
        ServeError::Engine(e)
    }
}

/// A parked job context: everything needed to resume on any slot.
struct Parked {
    snap: ContextSnapshot,
    handler: DigestHandler,
    stats: Arc<Mutex<OutQStats>>,
}

/// A job waiting in (or parked back into) a tenant queue.
struct Waiting {
    spec: JobSpec,
    built: Arc<BuiltJob>,
    parked: Option<Parked>,
    first_start: Option<u64>,
    service_cycles: u64,
    preemptions: u32,
}

/// A job currently occupying a slot.
struct Running {
    waiting: Waiting,
    engine: TmuAccelerator<DigestHandler>,
    /// Committed-step count at the last dispatch — the progress floor the
    /// preemption guard compares against.
    resumed_at: u64,
}

struct Slot {
    core: ServedCore,
    running: Option<Running>,
    /// No work, no future arrivals: excluded from the event loop.
    retired: bool,
}

/// The multi-tenant serving engine. Owns the build cache, the policy
/// state, and the slot pool for one [`Server::run`].
pub struct Server {
    cfg: ServeConfig,
    cache: BuildCache,
}

impl Server {
    /// A server with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        Self {
            cfg,
            cache: BuildCache::new(),
        }
    }

    /// Serves `trace` to completion and reports what happened.
    ///
    /// The loop is single-threaded and consults no ambient state, so the
    /// outcome is a pure function of the configuration and the trace.
    pub fn run(&mut self, mut trace: Vec<JobSpec>) -> Result<ServeOutcome, ServeError> {
        trace.sort_by_key(|j| (j.arrival, j.id));
        let quantum = self.cfg.quantum.max(1);

        let mut slots: Vec<Slot> = (0..self.cfg.slots.max(1))
            .map(|_| Slot {
                core: {
                    let mut c = ServedCore::new(
                        tmu_sim::CoreConfig::neoverse_n1_like(),
                        MemSysConfig::table5(1),
                    );
                    c.set_watchdog(self.cfg.watchdog);
                    c
                },
                running: None,
                retired: false,
            })
            .collect();

        let mut policy = PolicyState::new(self.cfg.policy);
        let mut queues: BTreeMap<u32, VecDeque<Waiting>> = BTreeMap::new();
        let mut rejected: BTreeMap<u32, u64> = BTreeMap::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut preemptions = 0u64;
        let mut next_arrival = 0usize;

        // Event selection: the live slot furthest behind in simulated
        // time runs next (ties break on slot index — deterministic).
        while let Some(s) = slots
            .iter()
            .enumerate()
            .filter(|(_, sl)| !sl.retired)
            .min_by_key(|(i, sl)| (sl.core.now(), *i))
            .map(|(i, _)| i)
        {
            let now = slots[s].core.now();
            admit(
                &trace,
                &mut next_arrival,
                now,
                &mut self.cache,
                &mut queues,
                &mut rejected,
                self.cfg.queue_cap,
            )?;

            if slots[s].running.is_none() {
                let backlogged: Vec<u32> = queues
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(&t, _)| t)
                    .collect();
                match policy.pick(&backlogged) {
                    Some(tenant) => {
                        let waiting = queues
                            .get_mut(&tenant)
                            .and_then(VecDeque::pop_front)
                            .expect("policy picked a backlogged tenant");
                        self.dispatch(&mut slots[s], waiting)?;
                    }
                    None => {
                        if next_arrival < trace.len() {
                            // Idle until the next arrival lands.
                            slots[s].core.skip_idle_to(trace[next_arrival].arrival);
                        } else {
                            slots[s].retired = true;
                        }
                        continue;
                    }
                }
            }

            // Drive one quantum.
            let mut run = slots[s].running.take().expect("dispatched above");
            let tenant = run.waiting.spec.tenant;
            let out = slots[s].core.drive(&mut run.engine, tenant, quantum)?;
            run.waiting.service_cycles += out.cycles;
            policy.charge(tenant, run.waiting.spec.weight, out.cycles);

            if out.finished {
                let now = slots[s].core.now();
                trace_event(
                    now,
                    EventKind::TenantComplete,
                    (u64::from(tenant) << 32) | u64::from(run.waiting.spec.id),
                );
                outcomes.push(JobOutcome {
                    id: run.waiting.spec.id,
                    tenant,
                    label: run.waiting.built.label.clone(),
                    arrival: run.waiting.spec.arrival,
                    first_start: run.waiting.first_start.unwrap_or(now),
                    completion: now,
                    service_cycles: run.waiting.service_cycles,
                    preemptions: run.waiting.preemptions,
                    digest: run.engine.handler().digest(),
                });
                continue;
            }

            // Preemption decision. Admit up to the post-quantum clock
            // first so work that arrived mid-quantum counts as contention.
            let now = slots[s].core.now();
            admit(
                &trace,
                &mut next_arrival,
                now,
                &mut self.cache,
                &mut queues,
                &mut rejected,
                self.cfg.queue_cap,
            )?;
            let contended = queues.values().any(|q| !q.is_empty());
            let progressed = run.engine.steps_committed() > run.resumed_at;
            if contended && progressed {
                let snap = run
                    .engine
                    .quiesce(now, 0, slots[s].core.mem_mut())
                    .map_err(ServeError::Engine)?;
                // Flush the sealed chunk's host-side ops before the
                // engine shell is torn down.
                slots[s].core.drain(&mut run.engine, tenant)?;
                let stats = run.engine.stats_handle();
                let handler = run.engine.into_handler();
                let mut waiting = run.waiting;
                waiting.preemptions += 1;
                waiting.parked = Some(Parked {
                    snap,
                    handler,
                    stats,
                });
                preemptions += 1;
                trace_event(
                    slots[s].core.now(),
                    EventKind::TenantPreempt,
                    (u64::from(tenant) << 32) | u64::from(waiting.spec.id),
                );
                // Back to the *front* of the tenant's queue: a preempted
                // job keeps its place in the tenant's own FIFO.
                queues.entry(tenant).or_default().push_front(waiting);
            } else {
                // No contention (or no progress yet): grant another
                // quantum on the same slot.
                slots[s].running = Some(run);
            }
        }

        let makespan = slots.iter().map(|sl| sl.core.now()).max().unwrap_or(0);
        Ok(ServeOutcome {
            outcomes,
            rejected,
            makespan,
            preemptions,
            build_hits: self.cache.hits(),
            build_misses: self.cache.misses(),
            slots: slots
                .into_iter()
                .map(|sl| sl.core.stats().clone())
                .collect(),
        })
    }

    /// Installs `waiting` on `slot` — fresh engine for a first dispatch,
    /// [`TmuAccelerator::resume_from`] for a parked context.
    fn dispatch(&self, slot: &mut Slot, mut waiting: Waiting) -> Result<(), ServeError> {
        let now = slot.core.now();
        // Context install penalty: the slot burns the switch cost before
        // the engine runs.
        slot.core.skip_idle_to(now + self.cfg.ctx_switch_cycles);
        let outq_base = job_outq_base(&waiting.built, waiting.spec.id);
        let mut engine = match waiting.parked.take() {
            None => TmuAccelerator::try_new(
                TmuConfig::paper(),
                Arc::clone(&waiting.built.program),
                Arc::clone(&waiting.built.image),
                DigestHandler::new(),
                outq_base,
            )?,
            Some(parked) => TmuAccelerator::resume_from(
                &parked.snap,
                Arc::clone(&waiting.built.image),
                parked.handler,
                outq_base,
                parked.stats,
            )?,
        };
        engine.set_tenant(waiting.spec.tenant);
        if waiting.first_start.is_none() {
            waiting.first_start = Some(slot.core.now());
        }
        trace_event(
            slot.core.now(),
            EventKind::TenantDispatch,
            (u64::from(waiting.spec.tenant) << 32) | u64::from(waiting.spec.id),
        );
        let resumed_at = engine.steps_committed();
        slot.running = Some(Running {
            waiting,
            engine,
            resumed_at,
        });
        Ok(())
    }
}

/// Each job writes its outQ chunks into a private window above the
/// shape's base, salted by job id, so concurrently-served clones of one
/// shape never alias chunk lines.
fn job_outq_base(built: &BuiltJob, job_id: u32) -> u64 {
    built.outq_base + (u64::from(job_id) << 28)
}

/// Admits every trace arrival at or before `now` into its tenant queue,
/// building (or batch-sharing) the job on admission. Full queues reject.
#[allow(clippy::too_many_arguments)]
fn admit(
    trace: &[JobSpec],
    next_arrival: &mut usize,
    now: u64,
    cache: &mut BuildCache,
    queues: &mut BTreeMap<u32, VecDeque<Waiting>>,
    rejected: &mut BTreeMap<u32, u64>,
    queue_cap: usize,
) -> Result<(), ServeError> {
    while *next_arrival < trace.len() && trace[*next_arrival].arrival <= now {
        let spec = trace[*next_arrival].clone();
        *next_arrival += 1;
        let queue = queues.entry(spec.tenant).or_default();
        if queue.len() >= queue_cap.max(1) {
            *rejected.entry(spec.tenant).or_insert(0) += 1;
            trace_event(now, EventKind::TenantReject, u64::from(spec.tenant));
            continue;
        }
        let built = cache.get(&spec.kind).map_err(|detail| ServeError::Build {
            job: spec.id,
            detail,
        })?;
        queue.push_back(Waiting {
            spec,
            built,
            parked: None,
            first_start: None,
            service_cycles: 0,
            preemptions: 0,
        });
        trace_event(now, EventKind::QueueDepth, queue.len() as u64);
    }
    Ok(())
}

/// Emits a serving-layer trace event when a tracer is installed.
fn trace_event(cycle: u64, kind: EventKind, payload: u64) {
    tmu_trace::with(|t| {
        let c = t.component("serve.sched");
        t.event(c, cycle, kind, payload);
    });
}

/// Runs `trace` through a fresh server and returns the outcome —
/// convenience for tests and benches.
pub fn serve(cfg: ServeConfig, trace: Vec<JobSpec>) -> Result<ServeOutcome, ServeError> {
    Server::new(cfg).run(trace)
}

/// Solo baseline: runs one job alone on a fresh slot with no quantum
/// bound and returns its digest — the reference stream the differential
/// tests compare preempted runs against.
pub fn solo_digest(built: &BuiltJob, job_id: u32) -> Result<EntryDigest, ServeError> {
    let mut slot = ServedCore::new(
        tmu_sim::CoreConfig::neoverse_n1_like(),
        MemSysConfig::table5(1),
    );
    let mut engine = TmuAccelerator::try_new(
        TmuConfig::paper(),
        Arc::clone(&built.program),
        Arc::clone(&built.image),
        DigestHandler::new(),
        job_outq_base(built, job_id),
    )?;
    let out = slot.drive(&mut engine, 0, u64::MAX)?;
    debug_assert!(out.finished);
    Ok(engine.handler().digest())
}
