//! The application-pipeline correctness anchor: every served DAG
//! completion is bit-identical to a solo unpreempted execution of the
//! same app — under any scheduling policy, any preemption quantum, and
//! the full chaos fault grid. Stage boundaries are the only durable
//! restart points, so a faulted stage replays from its boundary and the
//! cumulative cross-stage digest must still land on the solo value.

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use tmu_serve::{
    serve, solo_app, solo_digest, AppSoloRun, BuildCache, JobKind, JobSpec, KernelKind, Policy,
    ResilienceConfig, ServeConfig, SlotFaultKind, SlotFaultSpec,
};

/// The three built-in applications, at the arrival-pool shapes.
fn app_shapes() -> Vec<JobKind> {
    vec![
        JobKind::App {
            app: tmu_apps::AppKind::Gnn,
            rows: 48,
            nnz_per_row: 3,
            seed: 23,
            max_iters: 1,
        },
        JobKind::App {
            app: tmu_apps::AppKind::Cg,
            rows: 64,
            nnz_per_row: 4,
            seed: 23,
            max_iters: 6,
        },
        JobKind::App {
            app: tmu_apps::AppKind::PageRank,
            rows: 64,
            nnz_per_row: 4,
            seed: 23,
            max_iters: 5,
        },
    ]
}

/// Solo unpreempted reference runs, one per app shape.
fn solo_references(shapes: &[JobKind]) -> HashMap<JobKind, AppSoloRun> {
    shapes
        .iter()
        .map(|kind| {
            let spec = kind.app_spec().expect("app shape");
            (kind.clone(), solo_app(spec).expect("solo app drains"))
        })
        .collect()
}

/// Two tenants, two copies of every app, tight staggered arrivals.
fn app_trace(shapes: &[JobKind]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, kind) in shapes.iter().enumerate() {
        for copy in 0..2u32 {
            let id = (i as u32) * 2 + copy;
            jobs.push(JobSpec {
                id,
                tenant: copy,
                arrival: u64::from(id) * 1_000,
                weight: if copy == 0 { 3 } else { 1 },
                deadline: None,
                kind: kind.clone(),
            });
        }
    }
    jobs
}

#[test]
fn served_apps_match_solo_runs_under_random_preemption() {
    let shapes = app_shapes();
    let reference = solo_references(&shapes);
    let trace = app_trace(&shapes);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA995_5EED);

    for policy in [Policy::RoundRobin, Policy::WeightedFair, Policy::Edf] {
        for trial in 0..2 {
            let quantum = rng.gen_range(150u64..1_200);
            let cfg = ServeConfig {
                slots: 1,
                quantum,
                policy,
                ctx_switch_cycles: 250,
                ..ServeConfig::default()
            };
            let out = serve(cfg, trace.clone()).expect("serving run completes");
            assert_eq!(
                out.outcomes.len(),
                trace.len(),
                "{policy:?} q={quantum}: every app job must complete"
            );
            for o in &out.outcomes {
                let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
                assert_eq!(
                    o.digest, reference[&spec.kind].digest,
                    "{policy:?} q={quantum} trial {trial}: app job {} ({}) diverged \
                     from its solo run after {} preemptions",
                    o.id, o.label, o.preemptions
                );
            }
            assert!(
                out.preemptions > 0,
                "{policy:?} q={quantum}: a contended single-slot app mix must preempt"
            );
        }
    }
}

#[test]
fn two_level_cache_shares_builds_across_iterations_and_tenants() {
    let shapes = app_shapes();
    let trace = app_trace(&shapes);
    let cfg = ServeConfig {
        slots: 2,
        quantum: 6_000,
        policy: Policy::WeightedFair,
        ..ServeConfig::default()
    };
    let out = serve(cfg, trace.clone()).expect("serving run completes");
    assert_eq!(out.outcomes.len(), trace.len());

    // Both tenants ran iterative apps: every iteration past the first
    // reuses the compiled stage program, and the second copy of each app
    // reuses the first copy's base tensor.
    let total_program_hits: u64 = out.tenant_cache.values().map(|s| s.program_hits).sum();
    let total_tensor_hits: u64 = out.tenant_cache.values().map(|s| s.tensor_hits).sum();
    assert!(
        total_program_hits > 0,
        "iterative apps must hit the compiled-program cache"
    );
    assert!(
        total_tensor_hits > 0,
        "same-shape app copies must hit the built-tensor cache"
    );
    for (&tenant, stats) in &out.tenant_cache {
        let rate = out.cache_hit_rate(tenant);
        assert!(
            (0.0..=1.0).contains(&rate),
            "tenant {tenant} hit rate {rate} out of range"
        );
        assert_eq!(
            rate > 0.0,
            stats.tensor_hits + stats.program_hits > 0,
            "tenant {tenant}: rate and counters disagree"
        );
    }
    // Unbounded default capacity: nothing evicts.
    assert_eq!(out.stage_evictions, (0, 0));
    assert_eq!(out.build_evictions, 0);
}

#[test]
fn mixed_apps_and_kernels_serve_together() {
    let kernel = JobKind::Kernel {
        kind: KernelKind::Spmv,
        rows: 96,
        nnz_per_row: 4,
        seed: 21,
    };
    let gnn = app_shapes().remove(0);
    let mut cache = BuildCache::new();
    let kernel_ref = solo_digest(&cache.get(&kernel).expect("builds"), 0).expect("solo");
    let gnn_ref = solo_app(gnn.app_spec().expect("app")).expect("solo app");

    let mk = |id: u32, kind: &JobKind| JobSpec {
        id,
        tenant: id % 2,
        arrival: u64::from(id) * 500,
        weight: 1,
        deadline: None,
        kind: kind.clone(),
    };
    let trace = vec![mk(0, &kernel), mk(1, &gnn), mk(2, &kernel), mk(3, &gnn)];
    let cfg = ServeConfig {
        slots: 1,
        quantum: 900,
        policy: Policy::RoundRobin,
        ctx_switch_cycles: 250,
        ..ServeConfig::default()
    };
    let out = serve(cfg, trace.clone()).expect("mixed run completes");
    assert_eq!(out.outcomes.len(), 4);
    for o in &out.outcomes {
        let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
        let expect = match spec.kind {
            JobKind::App { .. } => gnn_ref.digest,
            _ => kernel_ref,
        };
        assert_eq!(o.digest, expect, "job {} ({}) diverged", o.id, o.label);
    }
    // The kernel batched through the shape memo; the app batched one
    // level down through the stage cache.
    assert!(out.build_hits >= 1, "kernel copies must batch");
    let tensor_hits: u64 = out.tenant_cache.values().map(|s| s.tensor_hits).sum();
    assert!(tensor_hits >= 1, "app copies must share the base tensor");
}

#[test]
fn app_chaos_grid_conserves_and_matches_solo_digests() {
    let shapes = app_shapes();
    let reference = solo_references(&shapes);
    let trace = app_trace(&shapes);
    let mut injected_anywhere = 0u64;

    for kind in SlotFaultKind::ALL {
        for policy in [Policy::RoundRobin, Policy::WeightedFair, Policy::Edf] {
            let cfg = ServeConfig {
                slots: 2,
                quantum: 400,
                policy,
                ctx_switch_cycles: 250,
                resilience: ResilienceConfig {
                    slot_faults: SlotFaultSpec {
                        seed: 0xA995_C4A0 ^ u64::from(kind.bit()),
                        rate_per_1k: 120,
                        kinds: kind.bit(),
                        reboot_cycles: 1_000,
                    },
                    retry_budget: 8,
                    backoff_base: 500,
                    backoff_cap: 4_000,
                    // Periodic checkpoints are requested but apps must
                    // ignore them: their restart points are stage
                    // boundaries only.
                    checkpoint_every: 600,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            };
            let label = format!("{}/{policy:?}", kind.name());
            let out = serve(cfg, trace.clone()).expect("chaos run completes");
            assert!(
                out.conserves(trace.len()),
                "{label}: {} completed + {} failed + {} shed != {} admitted",
                out.outcomes.len(),
                out.failed.len(),
                out.shed_total(),
                trace.len()
            );
            for o in &out.outcomes {
                let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
                assert_eq!(
                    o.digest, reference[&spec.kind].digest,
                    "{label}: app job {} ({}) diverged from its solo run after \
                     {} retries",
                    o.id, o.label, o.retries
                );
            }
            injected_anywhere += out.slot_faults.injected;
        }
    }
    assert!(
        injected_anywhere > 0,
        "the app chaos grid must actually inject slot faults"
    );
}

#[test]
fn app_serving_is_deterministic() {
    let shapes = app_shapes();
    let trace = app_trace(&shapes);
    let cfg = ServeConfig {
        slots: 2,
        quantum: 500,
        policy: Policy::WeightedFair,
        resilience: ResilienceConfig {
            slot_faults: SlotFaultSpec::with_rate(0xA9_DE7E12, 150),
            retry_budget: 6,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let a = serve(cfg, trace.clone()).expect("first run");
    let b = serve(cfg, trace).expect("second run");
    assert_eq!(a.outcomes, b.outcomes, "same seed must serve identically");
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.tenant_cache, b.tenant_cache);
}

#[test]
fn solo_app_references_have_the_expected_shape() {
    let shapes = app_shapes();
    let reference = solo_references(&shapes);
    for (kind, solo) in &reference {
        let JobKind::App { app, max_iters, .. } = kind else {
            unreachable!("app pool")
        };
        assert!(solo.iterations >= 1 && solo.iterations <= *max_iters);
        assert!(!solo.records.is_empty());
        assert!(solo.cycles > 0);
        assert!(
            solo.records.iter().all(|r| r.engine_cycles > 0),
            "{}: every stage must burn engine cycles",
            app.name()
        );
        match app {
            tmu_apps::AppKind::Gnn => {
                assert_eq!(solo.iterations, 1);
                assert_eq!(solo.records.len(), 2, "SDDMM then SpMM");
            }
            tmu_apps::AppKind::Cg | tmu_apps::AppKind::PageRank => {
                assert!(
                    solo.iterations > 1,
                    "{} must iterate at these shapes",
                    app.name()
                );
                assert_eq!(solo.records.len() as u32, solo.iterations);
            }
        }
    }
}
