//! The resilience layer's correctness anchor: a seeded chaos
//! differential grid. Over fault kinds × slot counts × policies, every
//! admitted job either completes with an outQ digest bit-identical to
//! its solo fault-free run, or lands in a typed terminal state — and
//! conservation holds exactly: admitted = completed + shed + failed.
//! No silent loss, ever.

use std::collections::HashMap;

use proptest::prelude::*;
use tmu_serve::{
    serve, solo_digest, BuildCache, EntryDigest, FailReason, JobFault, JobKind, JobSpec,
    KernelKind, Policy, ResilienceConfig, ServeConfig, ServeOutcome, Server, SlotFaultEvent,
    SlotFaultKind, SlotFaultPlan, SlotFaultSpec,
};

/// A compact shape grid: enough variety to cross the main marshaling
/// paths without making the chaos grid slow in debug CI.
fn shapes() -> Vec<JobKind> {
    vec![
        JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 96,
            nnz_per_row: 4,
            seed: 21,
        },
        JobKind::Kernel {
            kind: KernelKind::Spmspm,
            rows: 48,
            nnz_per_row: 3,
            seed: 23,
        },
        JobKind::Expr {
            src: "y(i) = A(i,j:csr) * x(j)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        },
    ]
}

fn solo_references(shapes: &[JobKind]) -> HashMap<JobKind, EntryDigest> {
    let mut cache = BuildCache::new();
    shapes
        .iter()
        .map(|kind| {
            let built = cache.get(kind).expect("shape builds");
            let digest = solo_digest(&built, 0).expect("solo run drains");
            (kind.clone(), digest)
        })
        .collect()
}

/// Two tenants, two copies of every shape, tight staggered arrivals,
/// and a deadline on every job so the miss accounting gets exercised.
fn chaos_trace(shapes: &[JobKind]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, kind) in shapes.iter().enumerate() {
        for copy in 0..2u32 {
            let id = (i as u32) * 2 + copy;
            jobs.push(JobSpec {
                id,
                tenant: copy,
                arrival: u64::from(id) * 1_000,
                weight: if copy == 0 { 3 } else { 1 },
                deadline: Some(u64::from(id) * 1_000 + 30_000),
                kind: kind.clone(),
            });
        }
    }
    jobs
}

/// Asserts the full chaos contract on one outcome: conservation, solo
/// digest bit-identity for every completion, typed reasons for every
/// terminal failure, and self-consistent deadline accounting.
fn assert_chaos_contract(
    out: &ServeOutcome,
    trace: &[JobSpec],
    reference: &HashMap<JobKind, EntryDigest>,
    label: &str,
) {
    assert!(
        out.conserves(trace.len()),
        "{label}: {} completed + {} failed + {} shed != {} admitted",
        out.outcomes.len(),
        out.failed.len(),
        out.shed_total(),
        trace.len()
    );
    for o in &out.outcomes {
        let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
        assert_eq!(
            o.digest, reference[&spec.kind],
            "{label}: job {} ({}) diverged from its solo run after {} retries",
            o.id, o.label, o.retries
        );
    }
    for f in &out.failed {
        let FailReason::RetryBudgetExhausted { budget, .. } = f.reason;
        assert!(
            f.attempts > budget,
            "{label}: job {} failed below its budget",
            f.id
        );
    }
    let missed = out.outcomes.iter().filter(|o| o.deadline_missed).count() as u64;
    assert_eq!(
        out.deadline_misses, missed,
        "{label}: deadline-miss counter disagrees with per-job flags"
    );
}

#[test]
fn chaos_grid_conserves_and_matches_solo_digests() {
    let shapes = shapes();
    let reference = solo_references(&shapes);
    let trace = chaos_trace(&shapes);
    let mut injected_anywhere = 0u64;

    for kind in SlotFaultKind::ALL {
        for slots in [1usize, 2] {
            for policy in [Policy::RoundRobin, Policy::WeightedFair, Policy::Edf] {
                let cfg = ServeConfig {
                    slots,
                    quantum: 400,
                    policy,
                    ctx_switch_cycles: 250,
                    resilience: ResilienceConfig {
                        slot_faults: SlotFaultSpec {
                            seed: 0xC4A05 ^ kind.bit() as u64,
                            rate_per_1k: 150,
                            kinds: kind.bit(),
                            reboot_cycles: 1_000,
                        },
                        retry_budget: 6,
                        backoff_base: 500,
                        backoff_cap: 4_000,
                        checkpoint_every: 600,
                        ..ResilienceConfig::default()
                    },
                    ..ServeConfig::default()
                };
                let label = format!("{}/{slots} slots/{policy:?}", kind.name());
                let out = serve(cfg, trace.clone()).expect("chaos run completes");
                assert_chaos_contract(&out, &trace, &reference, &label);
                injected_anywhere += out.slot_faults.injected;
            }
        }
    }
    assert!(
        injected_anywhere > 0,
        "the grid must actually inject slot faults, or it proves nothing"
    );
}

#[test]
fn scripted_crash_restarts_from_checkpoint_with_identical_digest() {
    let shapes = shapes();
    let reference = solo_references(&shapes);
    let trace = vec![JobSpec {
        id: 0,
        tenant: 0,
        arrival: 0,
        weight: 1,
        deadline: None,
        kind: shapes[0].clone(),
    }];
    let cfg = ServeConfig {
        slots: 1,
        quantum: 300,
        ctx_switch_cycles: 250,
        resilience: ResilienceConfig {
            checkpoint_every: 300,
            retry_budget: 3,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(cfg);
    // Crash on the third chaos consult: by then at least one periodic
    // checkpoint has been saved, so the retry resumes mid-job.
    server.inject_slot_plan(
        0,
        SlotFaultPlan::with_events(
            SlotFaultSpec {
                seed: 7,
                rate_per_1k: 0,
                kinds: SlotFaultKind::Crash.bit(),
                reboot_cycles: 2_000,
            },
            vec![SlotFaultEvent {
                at_quantum: 2,
                kind: SlotFaultKind::Crash,
            }],
        ),
    );
    let out = server.run(trace.clone()).expect("run completes");
    assert_chaos_contract(&out, &trace, &reference, "scripted crash");
    assert_eq!(out.outcomes.len(), 1, "the job must survive the crash");
    assert_eq!(out.outcomes[0].retries, 1, "exactly one retry");
    assert_eq!(out.slot_faults.crashes, 1);
    assert!(
        out.checkpoints >= 1,
        "a checkpoint must have been saved before the crash"
    );
    assert!(
        out.checkpoint_cycles_total() > 0,
        "checkpointing must cost accounted cycles"
    );
    assert_eq!(out.slots[0].reboots, 1, "the slot must have rebooted once");
    assert_eq!(out.retries_total(), 1);
}

#[test]
fn retry_budget_exhaustion_is_a_typed_terminal_failure() {
    let shapes = shapes();
    let trace = vec![JobSpec {
        id: 0,
        tenant: 0,
        arrival: 0,
        weight: 1,
        deadline: None,
        kind: shapes[0].clone(),
    }];
    let cfg = ServeConfig {
        slots: 1,
        quantum: 200,
        resilience: ResilienceConfig {
            // Crash on every consulted quantum: the job can never finish.
            slot_faults: SlotFaultSpec {
                seed: 3,
                rate_per_1k: 1_000,
                kinds: SlotFaultKind::Crash.bit(),
                reboot_cycles: 500,
            },
            retry_budget: 2,
            backoff_base: 1_000,
            backoff_cap: 8_000,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let out = serve(cfg, trace.clone()).expect("run terminates");
    assert!(out.outcomes.is_empty(), "the job cannot complete");
    assert_eq!(
        out.failed.len(),
        1,
        "it must land in the typed Failed state"
    );
    let f = &out.failed[0];
    assert_eq!((f.id, f.tenant, f.attempts), (0, 0, 3));
    assert_eq!(
        f.reason,
        FailReason::RetryBudgetExhausted {
            budget: 2,
            last: JobFault::SlotCrash,
        }
    );
    assert!(out.conserves(trace.len()));
    assert_eq!(out.retries_total(), 2, "both budgeted retries were spent");
}

#[test]
fn circuit_breaker_sheds_arrivals_while_open() {
    let shapes = shapes();
    let mk = |id: u32, arrival: u64| JobSpec {
        id,
        tenant: 0,
        arrival,
        weight: 1,
        deadline: None,
        kind: shapes[0].clone(),
    };
    // Job 0 faults immediately and terminally (budget 0); the breaker
    // trips on that fault and the three later arrivals shed at admission.
    let trace = vec![mk(0, 0), mk(1, 50_000), mk(2, 50_000), mk(3, 60_000)];
    let cfg = ServeConfig {
        slots: 1,
        quantum: 200,
        resilience: ResilienceConfig {
            slot_faults: SlotFaultSpec {
                seed: 11,
                rate_per_1k: 1_000,
                kinds: SlotFaultKind::Crash.bit(),
                reboot_cycles: 500,
            },
            retry_budget: 0,
            breaker_threshold: 1,
            breaker_open_cycles: 10_000_000,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let out = serve(cfg, trace.clone()).expect("run terminates");
    assert_eq!(out.failed.len(), 1);
    assert_eq!(out.breaker_opens, 1, "the breaker must trip exactly once");
    let shed = out.shed.get(&0).expect("tenant 0 shed arrivals");
    assert_eq!(shed.circuit_open, 3, "all later arrivals shed while open");
    assert!(out.conserves(trace.len()));
}

#[test]
fn chaos_runs_are_deterministic() {
    let shapes = shapes();
    let trace = chaos_trace(&shapes);
    let cfg = ServeConfig {
        slots: 2,
        quantum: 400,
        policy: Policy::WeightedFair,
        resilience: ResilienceConfig {
            slot_faults: SlotFaultSpec::with_rate(0xDE7E12, 200),
            checkpoint_every: 500,
            retry_budget: 5,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let a = serve(cfg, trace.clone()).expect("first run");
    let b = serve(cfg, trace).expect("second run");
    assert_eq!(a.outcomes, b.outcomes, "same seed must serve identically");
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.slot_faults, b.slot_faults);
    assert_eq!(a.makespan, b.makespan);
    assert!(
        a.slot_faults.injected > 0,
        "the determinism check must cover actual injections"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random chaos schedules: whatever the rate, kind mask, quantum,
    /// slot count, policy, checkpoint cadence, and retry budget, the
    /// conservation and digest-identity invariants hold.
    #[test]
    fn random_chaos_schedules_conserve_and_preserve_digests(
        (seed, rate, kinds, reboot) in (0u64..u64::MAX, 50u32..400, 1u8..8, 200u64..3_000),
        (quantum, slots, policy_ix) in (150u64..1_200, 1usize..3, 0usize..3),
        (ckpt_every, budget) in (0u64..1_500, 0u32..5),
    ) {
        let shapes = shapes();
        let reference = solo_references(&shapes);
        let trace = chaos_trace(&shapes);
        let policy = [Policy::RoundRobin, Policy::WeightedFair, Policy::Edf][policy_ix];
        let cfg = ServeConfig {
            slots,
            quantum,
            policy,
            ctx_switch_cycles: 250,
            resilience: ResilienceConfig {
                slot_faults: SlotFaultSpec {
                    seed,
                    rate_per_1k: rate,
                    kinds,
                    reboot_cycles: reboot,
                },
                retry_budget: budget,
                backoff_base: 400,
                backoff_cap: 6_000,
                checkpoint_every: ckpt_every,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let out = serve(cfg, trace.clone()).expect("chaos run completes");
        prop_assert!(out.conserves(trace.len()),
            "{} completed + {} failed + {} shed != {} admitted",
            out.outcomes.len(), out.failed.len(), out.shed_total(), trace.len());
        for o in &out.outcomes {
            let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
            prop_assert_eq!(o.digest, reference[&spec.kind],
                "job {} diverged under random chaos", o.id);
        }
    }
}
