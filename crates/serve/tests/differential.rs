//! The serving layer's correctness anchor: under ANY preemption
//! schedule, each job's marshaled outQ entry stream is bit-identical to
//! its solo fault-free run.
//!
//! The grid covers five shapes (four Table 4 kernels plus one einsum
//! expression) × both scheduling policies × randomized preemption
//! quanta. Every served job's digest is compared against a solo run of
//! the same shape; the contended configurations must also actually
//! preempt, or the grid would vacuously pass.

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use tmu_serve::{
    serve, solo_digest, synthesize, BuildCache, EntryDigest, JobKind, JobSpec, KernelKind, Policy,
    ServeConfig, TraceConfig,
};

/// The differential shape grid: small enough for debug-mode CI, varied
/// enough to cross every marshaling path (CSR matrices, sparse vectors,
/// matrix co-iteration, k-way merge, einsum lowering).
fn shapes() -> Vec<JobKind> {
    vec![
        JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 96,
            nnz_per_row: 4,
            seed: 21,
        },
        JobKind::Kernel {
            kind: KernelKind::Spmspv,
            rows: 96,
            nnz_per_row: 4,
            seed: 21,
        },
        JobKind::Kernel {
            kind: KernelKind::Spmspm,
            rows: 48,
            nnz_per_row: 3,
            seed: 23,
        },
        JobKind::Kernel {
            kind: KernelKind::Spkadd,
            rows: 64,
            nnz_per_row: 3,
            seed: 24,
        },
        JobKind::Expr {
            src: "y(i) = A(i,j:csr) * x(j)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        },
    ]
}

/// Solo reference digests, one per shape (digests are outQ-address and
/// schedule independent, so one solo run pins the stream for every job
/// of that shape).
fn solo_references(shapes: &[JobKind]) -> HashMap<JobKind, EntryDigest> {
    let mut cache = BuildCache::new();
    shapes
        .iter()
        .map(|kind| {
            let built = cache.get(kind).expect("shape builds");
            let digest = solo_digest(&built, 0).expect("solo run drains");
            (kind.clone(), digest)
        })
        .collect()
}

/// A two-tenant trace that interleaves every shape with staggered
/// arrivals, so slots contend and the scheduler preempts.
fn grid_trace(shapes: &[JobKind]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, kind) in shapes.iter().enumerate() {
        for copy in 0..2u32 {
            let id = (i as u32) * 2 + copy;
            jobs.push(JobSpec {
                id,
                tenant: copy,
                // Tight arrivals: everything lands early, forcing queueing.
                arrival: u64::from(id) * 1_000,
                weight: if copy == 0 { 3 } else { 1 },
                deadline: None,
                kind: kind.clone(),
            });
        }
    }
    jobs
}

#[test]
fn preemption_grid_is_bit_identical_to_solo_runs() {
    let shapes = shapes();
    let reference = solo_references(&shapes);
    let trace = grid_trace(&shapes);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5EED_5EED);

    for policy in [Policy::RoundRobin, Policy::WeightedFair] {
        // Three randomized quanta per policy. The grid fixtures run
        // 600–4000 cycles solo, so quanta in the low hundreds force many
        // mid-job switches while ~1500 gives a coarse regime.
        for trial in 0..3 {
            let quantum = rng.gen_range(100u64..1_500);
            let cfg = ServeConfig {
                slots: 1,
                quantum,
                policy,
                ctx_switch_cycles: 250,
                ..ServeConfig::default()
            };
            let out = serve(cfg, trace.clone()).expect("serving run completes");
            assert_eq!(
                out.outcomes.len(),
                trace.len(),
                "{policy:?} q={quantum}: every job must complete"
            );
            for o in &out.outcomes {
                let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
                let expect = reference[&spec.kind];
                assert_eq!(
                    o.digest, expect,
                    "{policy:?} q={quantum} trial {trial}: job {} ({}) diverged from its solo run \
                     after {} preemptions",
                    o.id, o.label, o.preemptions
                );
            }
            assert!(
                out.preemptions > 0,
                "{policy:?} q={quantum}: a contended single-slot run must preempt, \
                 or this grid proves nothing"
            );
        }
    }
}

#[test]
fn two_slot_pool_preserves_streams_and_batches_builds() {
    let shapes = shapes();
    let reference = solo_references(&shapes);
    let trace = grid_trace(&shapes);
    let cfg = ServeConfig {
        slots: 2,
        quantum: 8_000,
        policy: Policy::WeightedFair,
        ..ServeConfig::default()
    };
    let out = serve(cfg, trace.clone()).expect("serving run completes");
    assert_eq!(out.outcomes.len(), trace.len());
    for o in &out.outcomes {
        let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
        assert_eq!(o.digest, reference[&spec.kind], "job {} diverged", o.id);
    }
    // Two jobs per shape, one build per shape: half the builds batch.
    assert_eq!(out.build_misses, shapes.len() as u64);
    assert_eq!(out.build_hits, shapes.len() as u64);
    assert_eq!(out.rejected.values().sum::<u64>(), 0);
    assert!(out.makespan > 0);
}

#[test]
fn serving_is_deterministic_for_a_fixed_seed() {
    let trace_cfg = TraceConfig {
        tenants: 2,
        jobs: 8,
        mean_gap: 10_000,
        seed: 42,
        with_exprs: true,
        ..TraceConfig::default()
    };
    let cfg = ServeConfig {
        slots: 2,
        quantum: 12_000,
        policy: Policy::RoundRobin,
        ..ServeConfig::default()
    };
    let a = serve(cfg, synthesize(&trace_cfg)).expect("first run");
    let b = serve(cfg, synthesize(&trace_cfg)).expect("second run");
    assert_eq!(a.outcomes, b.outcomes, "same seed must serve identically");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.preemptions, b.preemptions);
}

#[test]
fn bounded_queues_reject_when_full() {
    // One slow tenant, a one-deep queue, and a burst of simultaneous
    // arrivals: all but the head and the first queued job must reject.
    let kind = JobKind::Kernel {
        kind: KernelKind::Spmv,
        rows: 96,
        nnz_per_row: 4,
        seed: 21,
    };
    let trace: Vec<JobSpec> = (0..5)
        .map(|id| JobSpec {
            id,
            tenant: 0,
            arrival: 0,
            weight: 1,
            deadline: None,
            kind: kind.clone(),
        })
        .collect();
    let cfg = ServeConfig {
        slots: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let out = serve(cfg, trace).expect("serving run completes");
    let done = out.outcomes.len() as u64;
    let rejected = out.rejected.values().sum::<u64>();
    assert_eq!(done + rejected, 5);
    assert!(rejected >= 3, "a one-deep queue must shed the burst");
}
