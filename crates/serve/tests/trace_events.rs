//! The serving layer's new pipeline trace events actually fire: a traced
//! app mix emits `stage_start` / `stage_done` per dispatched stage and
//! `tensor_cache_hit` when the two-level cache serves a base tensor.

use tmu_serve::{serve, JobKind, JobSpec, Policy, ServeConfig};
use tmu_trace::{TraceConfig, Tracer};

#[test]
fn served_apps_emit_stage_and_cache_events() {
    let gnn = JobKind::App {
        app: tmu_apps::AppKind::Gnn,
        rows: 48,
        nnz_per_row: 3,
        seed: 23,
        max_iters: 1,
    };
    // Two copies: the second admission hits the built-tensor cache.
    let mut trace: Vec<JobSpec> = (0..2u32)
        .map(|id| JobSpec {
            id,
            tenant: id,
            arrival: u64::from(id) * 500,
            weight: 1,
            deadline: None,
            kind: gnn.clone(),
        })
        .collect();
    // One kernel job alongside, so the shape memo publishes its
    // counters into the stats registry too.
    trace.push(JobSpec {
        id: 2,
        tenant: 0,
        arrival: 1_000,
        weight: 1,
        deadline: None,
        kind: JobKind::Kernel {
            kind: tmu_serve::KernelKind::Spmv,
            rows: 96,
            nnz_per_row: 4,
            seed: 21,
        },
    });
    tmu_trace::install(Tracer::new(TraceConfig::default()));
    let out = serve(
        ServeConfig {
            slots: 1,
            quantum: 2_000,
            policy: Policy::RoundRobin,
            ..ServeConfig::default()
        },
        trace,
    )
    .expect("traced app mix serves");
    let tracer = tmu_trace::uninstall().expect("tracer installed");
    assert_eq!(out.outcomes.len(), 3);

    // The build-cache counters were mirrored into the stats registry.
    assert_eq!(
        tracer.registry().counter("serve.build_cache.misses"),
        Some(1)
    );

    let json = tracer.chrome_json();
    assert!(json.contains("\"stage_start\""), "{json}");
    assert!(json.contains("\"stage_done\""), "{json}");
    assert!(json.contains("\"tensor_cache_hit\""), "{json}");
}
