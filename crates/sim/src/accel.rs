//! Interface between the simulated system and a near-core accelerator.
//!
//! The TMU engine (crate `tmu`) implements [`Accelerator`]. Each simulated
//! cycle the system ticks the engine (which issues memory requests through
//! [`crate::MemSys::accel_read`] and writes outQ chunks via
//! [`crate::MemSys::accel_write`]); host-side callback ops produced from
//! completed chunks are drained into the core's op stream, gated by their
//! `visible_at` cycle. When the core commits a chunk-end marker it
//! acknowledges the chunk, freeing one of the engine's double buffers.

use crate::memsys::MemSys;
use crate::op::Op;

/// A near-core engine co-simulated with its host core.
pub trait Accelerator {
    /// Advances the engine by one cycle.
    fn tick(&mut self, now: u64, core: usize, mem: &mut MemSys);

    /// Moves host ops produced by completed outQ chunks into `out`.
    /// Each op's `visible_at` must be set to its chunk's ready cycle.
    fn drain_ops(&mut self, out: &mut Vec<Op>);

    /// The host core finished processing chunk `chunk` at `now`.
    fn ack_chunk(&mut self, chunk: u32, now: u64);

    /// Whether the engine has finished: traversal complete and every
    /// produced op handed over via [`Accelerator::drain_ops`].
    fn done(&self) -> bool;

    /// One-line human-readable state summary for watchdog diagnostic
    /// dumps. The default is empty (nothing worth reporting).
    fn status_line(&self) -> String {
        String::new()
    }
}

/// A no-op accelerator (useful in tests of the system plumbing).
#[derive(Debug, Default)]
pub struct NullAccelerator;

impl Accelerator for NullAccelerator {
    fn tick(&mut self, _now: u64, _core: usize, _mem: &mut MemSys) {}

    fn drain_ops(&mut self, _out: &mut Vec<Op>) {}

    fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}

    fn done(&self) -> bool {
        true
    }
}
