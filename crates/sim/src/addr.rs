//! Virtual address space management for simulated kernels.
//!
//! Kernels address their arrays through an [`AddressMap`]: a bump allocator
//! that hands out page-aligned, non-overlapping virtual regions. The
//! resulting addresses flow through the cache hierarchy exactly like real
//! pointers, so aliasing, cacheline sharing between adjacent elements, and
//! page-boundary effects behave faithfully.

/// Cacheline size used throughout the memory hierarchy (bytes).
pub const CACHELINE: u64 = 64;

/// Page size used for alignment of allocated regions (bytes).
pub const PAGE: u64 = 4096;

/// Returns the cacheline-aligned address containing `addr`.
pub fn line_of(addr: u64) -> u64 {
    addr & !(CACHELINE - 1)
}

/// A named, page-aligned virtual region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
}

impl Region {
    /// Address of the `i`-th element of size `elem` bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the element lies outside the region.
    pub fn at(&self, i: usize, elem: u64) -> u64 {
        let off = i as u64 * elem;
        debug_assert!(
            off + elem <= self.len,
            "element {i} (elem size {elem}) outside region of {} bytes",
            self.len
        );
        self.base + off
    }

    /// Address of the `i`-th 8-byte element (f64 / u64 arrays).
    pub fn f64_at(&self, i: usize) -> u64 {
        self.at(i, 8)
    }

    /// Address of the `i`-th 4-byte element (u32 index arrays).
    pub fn u32_at(&self, i: usize) -> u64 {
        self.at(i, 4)
    }
}

/// Bump allocator for simulated virtual memory.
///
/// The zero page is never allocated so that address 0 can serve as a null
/// sentinel.
#[derive(Debug, Clone)]
pub struct AddressMap {
    next: u64,
    regions: Vec<(String, Region)>,
}

impl Default for AddressMap {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressMap {
    /// Creates an empty address map.
    pub fn new() -> Self {
        Self {
            next: PAGE,
            regions: Vec::new(),
        }
    }

    /// Allocates a page-aligned region of at least `bytes` bytes.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> Region {
        let len = bytes.max(1).div_ceil(PAGE) * PAGE;
        let region = Region {
            base: self.next,
            len,
        };
        self.next += len;
        self.regions.push((name.to_owned(), region));
        region
    }

    /// Allocates a region sized for `n` elements of `elem` bytes.
    pub fn alloc_elems(&mut self, name: &str, n: usize, elem: u64) -> Region {
        self.alloc(name, n as u64 * elem)
    }

    /// Total allocated bytes (page-rounded).
    pub fn allocated(&self) -> u64 {
        self.next - PAGE
    }

    /// Looks up a region by name (diagnostics only).
    pub fn region(&self, name: &str) -> Option<Region> {
        self.regions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut map = AddressMap::new();
        let a = map.alloc("a", 100);
        let b = map.alloc("b", 5000);
        assert_eq!(a.base % PAGE, 0);
        assert_eq!(b.base % PAGE, 0);
        assert!(a.base + a.len <= b.base);
        assert!(a.base >= PAGE, "zero page must stay unmapped");
    }

    #[test]
    fn element_addressing() {
        let mut map = AddressMap::new();
        let r = map.alloc_elems("vals", 16, 8);
        assert_eq!(r.f64_at(0), r.base);
        assert_eq!(r.f64_at(2), r.base + 16);
        assert_eq!(r.u32_at(3), r.base + 12);
    }

    #[test]
    fn line_of_masks_offset() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }

    #[test]
    fn lookup_by_name() {
        let mut map = AddressMap::new();
        let r = map.alloc("x", 8);
        assert_eq!(map.region("x"), Some(r));
        assert_eq!(map.region("y"), None);
    }
}
