//! Branch prediction model.
//!
//! A gshare predictor: the global history register is XOR-folded with the
//! branch site to index a table of 2-bit saturating counters. Data-dependent
//! branches in sparse traversal/merging code are exactly the ones gshare
//! cannot learn — they mispredict at high rates, producing the frontend
//! stalls the paper measures in §3.

/// Gshare branch predictor with 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
    /// Total predictions made.
    pub lookups: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^index_bits` counters and
    /// `history_bits` of global history.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        Self {
            // Initialize to weakly-taken: loop back-edges start predicted.
            table: vec![2u8; 1 << index_bits],
            history: 0,
            history_bits,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, site: u16) -> usize {
        let mask = self.table.len() as u64 - 1;
        (((site as u64) ^ self.history) & mask) as usize
    }

    /// Predicts the branch at `site`, updates the predictor with the actual
    /// direction, and returns whether the prediction was *wrong*.
    pub fn mispredicted(&mut self, site: u16, taken: bool) -> bool {
        self.lookups += 1;
        let idx = self.index(site);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        // Update the counter toward the actual outcome.
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        // Shift the actual outcome into global history.
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u64) & mask;
        let wrong = predicted_taken != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Misprediction rate over the predictor's lifetime.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        // 4K-entry table, 12 bits of history: a mid-size gshare.
        Self::new(12, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut bp = BranchPredictor::default();
        // Warm up: always-taken loop back-edge.
        for _ in 0..64 {
            bp.mispredicted(7, true);
        }
        let before = bp.mispredicts;
        for _ in 0..100 {
            bp.mispredicted(7, true);
        }
        assert_eq!(bp.mispredicts, before, "steady branch must be learned");
    }

    #[test]
    fn learns_a_short_pattern() {
        let mut bp = BranchPredictor::default();
        // Alternating pattern is learnable through history correlation.
        let mut t = false;
        for _ in 0..512 {
            bp.mispredicted(3, t);
            t = !t;
        }
        let before = bp.mispredicts;
        for _ in 0..200 {
            bp.mispredicted(3, t);
            t = !t;
        }
        let tail = bp.mispredicts - before;
        assert!(
            tail < 20,
            "alternating branch should be mostly predicted, got {tail}/200 wrong"
        );
    }

    #[test]
    fn random_data_dependent_branch_mispredicts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let mut bp = BranchPredictor::default();
        for _ in 0..10_000 {
            bp.mispredicted(9, rng.gen());
        }
        let rate = bp.mispredict_rate();
        assert!(
            rate > 0.35,
            "random branches must stay unpredictable, rate = {rate}"
        );
    }

    #[test]
    fn rate_zero_without_lookups() {
        let bp = BranchPredictor::default();
        assert_eq!(bp.mispredict_rate(), 0.0);
    }
}
