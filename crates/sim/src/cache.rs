//! Set-associative cache model with MSHRs.
//!
//! Each cache level tracks real tag state (LRU replacement, dirty bits) and
//! a finite pool of Miss Status Holding Registers. MSHR exhaustion is the
//! mechanism by which limited memory-level parallelism throttles the
//! baseline kernels in the paper (§3): when all MSHRs are busy, the next
//! miss's handling is pushed back to the earliest release, which surfaces
//! as backend stall cycles in the core.

use std::collections::HashMap;

use crate::addr::{line_of, CACHELINE};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Data access latency in cycles (added on a hit, and as the fill/probe
    /// pipeline cost on the miss path).
    pub latency: u64,
    /// Number of Miss Status Holding Registers.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> usize {
        (self.size_bytes / CACHELINE) as usize / self.ways
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Pool of MSHR slots tracked by completion time.
#[derive(Debug, Clone)]
pub struct MshrPool {
    slots: Vec<u64>,
    /// Times a request found all slots busy.
    pub full_events: u64,
}

impl MshrPool {
    /// Creates a pool of `n` slots, all free.
    pub fn new(n: usize) -> Self {
        Self {
            slots: vec![0; n.max(1)],
            full_events: 0,
        }
    }

    /// Acquires a slot for a request wanting to start at `t`.
    ///
    /// Returns `(slot_index, actual_start)`: if all slots are busy at `t`
    /// the start is delayed to the earliest release.
    pub fn acquire(&mut self, t: u64) -> (usize, u64) {
        let (idx, &earliest) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &free_at)| free_at)
            .expect("pool is non-empty");
        if earliest > t {
            self.full_events += 1;
            (idx, earliest)
        } else {
            (idx, t)
        }
    }

    /// Marks a slot busy until `completion`.
    pub fn hold(&mut self, idx: usize, completion: u64) {
        self.slots[idx] = completion;
    }

    /// Number of slots busy at time `t` (diagnostics).
    pub fn busy_at(&self, t: u64) -> usize {
        self.slots.iter().filter(|&&free| free > t).count()
    }
}

/// Result of probing a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
    /// Line absent but already being fetched; completes at the given cycle.
    InFlight(u64),
}

/// A set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Entry>>,
    set_mask: u64,
    use_counter: u64,
    inflight: HashMap<u64, u64>,
    /// MSHR pool guarding the miss path.
    pub mshrs: MshrPool,
    /// Demand hits.
    pub hits: u64,
    /// Primary demand misses (each issued a new fetch).
    pub misses: u64,
    /// Secondary misses: accesses that merged into an in-flight fetch of
    /// the same line. One per probing access — the core issues each memory
    /// op's access exactly once, so this counts distinct requesters, never
    /// re-probes by the same request.
    pub merged: u64,
    /// Dirty lines evicted (writeback traffic).
    pub writebacks: u64,
    #[cfg(feature = "trace")]
    trace: Option<tmu_trace::ComponentId>,
}

impl Cache {
    /// Creates a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration implies zero sets.
    pub fn new(cfg: CacheConfig) -> Self {
        let n_sets = cfg.sets();
        assert!(n_sets > 0, "cache too small for its associativity");
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Self {
            cfg,
            sets: vec![vec![Entry::default(); cfg.ways]; n_sets],
            set_mask: n_sets as u64 - 1,
            use_counter: 0,
            inflight: HashMap::new(),
            mshrs: MshrPool::new(cfg.mshrs),
            hits: 0,
            misses: 0,
            merged: 0,
            writebacks: 0,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    /// The level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Attaches this cache to a tracer component: subsequent probes emit
    /// hit/miss/merge events against `id` when a tracer is installed.
    #[cfg(feature = "trace")]
    pub fn set_trace(&mut self, id: tmu_trace::ComponentId) {
        self.trace = Some(id);
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn emit(&self, t: u64, kind: tmu_trace::EventKind, line: u64) {
        if let Some(id) = self.trace {
            tmu_trace::with(|tr| tr.event(id, t, kind, line));
        }
    }

    fn set_of(&self, line: u64) -> usize {
        ((line / CACHELINE) & self.set_mask) as usize
    }

    /// Probes for the line containing `addr` at time `t`, updating LRU and
    /// hit/miss statistics.
    ///
    /// Lines whose fill is still in flight report their completion time:
    /// the cache state is updated eagerly when a miss is handled, so the
    /// in-flight record is what preserves correct timing for accesses that
    /// arrive between miss issue and fill arrival.
    pub fn probe(&mut self, addr: u64, t: u64) -> Probe {
        let line = line_of(addr);
        // In-flight check comes first: an eagerly-filled line must not look
        // like a zero-latency hit before its data actually arrived.
        if let Some(&done) = self.inflight.get(&line) {
            if done > t {
                self.touch(line);
                self.merged += 1;
                #[cfg(feature = "trace")]
                self.emit(t, tmu_trace::EventKind::CacheMerge, line);
                return Probe::InFlight(done);
            }
            self.inflight.remove(&line);
        }
        self.use_counter += 1;
        let stamp = self.use_counter;
        let set = self.set_of(line);
        for i in 0..self.sets[set].len() {
            let e = &mut self.sets[set][i];
            if e.valid && e.tag == line {
                e.last_use = stamp;
                self.hits += 1;
                #[cfg(feature = "trace")]
                self.emit(t, tmu_trace::EventKind::CacheHit, line);
                return Probe::Hit;
            }
        }
        self.misses += 1;
        #[cfg(feature = "trace")]
        self.emit(t, tmu_trace::EventKind::CacheMiss, line);
        Probe::Miss
    }

    fn touch(&mut self, line: u64) {
        self.use_counter += 1;
        let stamp = self.use_counter;
        let set = self.set_of(line);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.tag == line) {
            e.last_use = stamp;
        }
    }

    /// Drops in-flight records that completed before `t` (bounds map size).
    pub fn sweep_inflight(&mut self, t: u64) {
        if self.inflight.len() > 4 * self.cfg.mshrs {
            self.inflight.retain(|_, &mut done| done > t);
        }
    }

    /// Checks for presence without updating statistics or LRU.
    pub fn contains(&self, addr: u64) -> bool {
        let line = line_of(addr);
        let set = self.set_of(line);
        self.sets[set].iter().any(|e| e.valid && e.tag == line)
    }

    /// Records that `line` is being fetched and will arrive at `completion`.
    pub fn mark_inflight(&mut self, addr: u64, completion: u64) {
        self.inflight.insert(line_of(addr), completion);
    }

    /// Inserts the line containing `addr`, returning the evicted victim
    /// `(line, was_dirty)` if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<(u64, bool)> {
        let line = line_of(addr);
        self.use_counter += 1;
        let stamp = self.use_counter;
        let set = self.set_of(line);
        // Already present (e.g. a racing fill): just update.
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.tag == line) {
            e.last_use = stamp;
            e.dirty |= dirty;
            return None;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("ways > 0");
        let evicted = if victim.valid {
            if victim.dirty {
                self.writebacks += 1;
            }
            Some((victim.tag, victim.dirty))
        } else {
            None
        };
        *victim = Entry {
            tag: line,
            valid: true,
            dirty,
            last_use: stamp,
        };
        evicted
    }

    /// Marks the line containing `addr` dirty if present; returns success.
    pub fn set_dirty(&mut self, addr: u64) -> bool {
        let line = line_of(addr);
        let set = self.set_of(line);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.tag == line) {
            e.dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes the line containing `addr`, returning `(found, was_dirty)` —
    /// used by the mostly-exclusive LLC (a hit moves the line up).
    pub fn invalidate(&mut self, addr: u64) -> (bool, bool) {
        let line = line_of(addr);
        let set = self.set_of(line);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.tag == line) {
            let dirty = e.dirty;
            e.valid = false;
            e.dirty = false;
            (true, dirty)
        } else {
            (false, false)
        }
    }

    /// Demand miss ratio over the cache's lifetime: primary misses over
    /// all accesses. Merged accesses reuse an in-flight fetch rather than
    /// issuing a new one, so they count in the denominator only — adding
    /// them to the numerator would double-count each fetched line.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.merged;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency: 2,
            mshrs: 4,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert_eq!(c.probe(0x100, 0), Probe::Miss);
        c.fill(0x100, false);
        assert_eq!(c.probe(0x13f, 1), Probe::Hit, "same line, different byte");
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 lines = 256B).
        c.fill(0x000, false);
        c.fill(0x100, false);
        c.probe(0x000, 0); // touch to make 0x100 the LRU
        let evicted = c.fill(0x200, false).expect("must evict");
        assert_eq!(evicted, (0x100, false));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.fill(0x000, true);
        c.fill(0x100, false);
        c.fill(0x200, false); // evicts dirty 0x000
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn inflight_merge() {
        let mut c = tiny();
        assert_eq!(c.probe(0x40, 0), Probe::Miss);
        c.mark_inflight(0x40, 100);
        assert_eq!(c.probe(0x48, 5), Probe::InFlight(100));
        assert_eq!(c.merged, 1);
        // After completion the record is stale; fill clears it.
        c.fill(0x40, false);
        assert_eq!(c.probe(0x40, 101), Probe::Hit);
    }

    #[test]
    fn miss_rate_counts_each_fetch_once() {
        // One primary miss plus three distinct accesses merging into the
        // same in-flight fetch: the line is fetched once, so the miss rate
        // must report 1 miss out of 4 accesses — merges stay out of the
        // numerator (they previously double-counted the fetch).
        let mut c = tiny();
        assert_eq!(c.probe(0x40, 0), Probe::Miss);
        c.mark_inflight(0x40, 100);
        c.fill(0x40, false);
        for t in [1, 2, 3] {
            assert_eq!(c.probe(0x40, t), Probe::InFlight(100));
        }
        assert_eq!((c.hits, c.misses, c.merged), (0, 1, 3));
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
        // Once the fill has landed and the fetch completed, accesses hit.
        assert_eq!(c.probe(0x40, 150), Probe::Hit);
        assert!((c.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mshr_pool_delays_when_full() {
        let mut pool = MshrPool::new(2);
        let (a, s0) = pool.acquire(10);
        pool.hold(a, 50);
        let (b, s1) = pool.acquire(10);
        pool.hold(b, 60);
        assert_eq!((s0, s1), (10, 10));
        let (_, s2) = pool.acquire(10);
        assert_eq!(s2, 50, "third request must wait for first release");
        assert_eq!(pool.full_events, 1);
        assert_eq!(pool.busy_at(55), 1);
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut c = tiny();
        c.fill(0x80, false);
        c.set_dirty(0x80);
        assert_eq!(c.invalidate(0x80), (true, true));
        assert_eq!(c.invalidate(0x80), (false, false));
    }
}
