//! Canned system configurations.
//!
//! * [`neoverse_n1_system`] — the paper's Table 5 evaluation system;
//! * [`a64fx_like`] / [`graviton3_like`] — the two processors profiled in
//!   the Figure 3 motivation study, reduced to 8 cores while preserving the
//!   contrasts the paper draws: the A64FX-like machine has high per-core
//!   memory bandwidth but a narrow out-of-order window and small private
//!   caches; the Graviton3-like machine has aggressive cores and large
//!   caches but little per-core bandwidth.

use crate::cache::CacheConfig;
use crate::core::CoreConfig;
use crate::dram::DramConfig;
use crate::memsys::MemSysConfig;
use crate::system::SystemConfig;

/// The Table 5 system: 8 Neoverse-N1-like cores at 2.4 GHz, 3 cache
/// levels, 4 HBM2e channels, 4×4 mesh.
pub fn neoverse_n1_system() -> SystemConfig {
    SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(8),
    }
}

/// Table 5 system with a different SVE width (Figure 14 sensitivity).
pub fn neoverse_n1_with_sve(sve_bits: u32) -> SystemConfig {
    let mut cfg = neoverse_n1_system();
    cfg.core.sve_bits = sve_bits;
    cfg
}

/// An A64FX-like configuration (Figure 3): HPC processor with ~1 TB/s for
/// 48 cores (≈21 GB/s per core — here 8 cores on 5 channels), a modest
/// out-of-order window, and no mid-level cache to speak of.
pub fn a64fx_like() -> SystemConfig {
    SystemConfig {
        core: CoreConfig {
            fetch_width: 2,
            commit_width: 2,
            rob: 128,
            lq: 40,
            sq: 24,
            mispredict_penalty: 14,
            int_lat: 1,
            fp_lat: 4,
            vec_lat: 4,
            sve_bits: 512,
            load_ports: 2,
            store_ports: 1,
            vec_ports: 2,
            freq_ghz: 2.2,
        },
        mem: MemSysConfig {
            cores: 8,
            l1: CacheConfig {
                size_bytes: 64 << 10,
                ways: 4,
                latency: 3,
                mshrs: 16,
            },
            // A64FX has no private L2; model a small combining buffer.
            l2: CacheConfig {
                size_bytes: 128 << 10,
                ways: 8,
                latency: 8,
                mshrs: 24,
            },
            llc_slice: CacheConfig {
                size_bytes: 1 << 20,
                ways: 16,
                latency: 30,
                mshrs: 128,
            },
            llc_slices: 8,
            dram: DramConfig::hbm2e(5),
            l1_stride_degree: 2,
            l2_best_offset: false,
            accel_outstanding: 128,
        },
    }
}

/// A Graviton-3-like configuration (Figure 3): data-center processor with
/// ~300 GB/s for 64 cores (≈4.7 GB/s per core — here 8 cores on 1
/// channel), aggressive cores and large caches.
pub fn graviton3_like() -> SystemConfig {
    SystemConfig {
        core: CoreConfig {
            fetch_width: 8,
            commit_width: 8,
            rob: 512,
            lq: 128,
            sq: 64,
            mispredict_penalty: 11,
            int_lat: 1,
            fp_lat: 4,
            vec_lat: 4,
            sve_bits: 256,
            load_ports: 3,
            store_ports: 2,
            vec_ports: 4,
            freq_ghz: 2.6,
        },
        mem: MemSysConfig {
            cores: 8,
            l1: CacheConfig {
                size_bytes: 64 << 10,
                ways: 4,
                latency: 2,
                mshrs: 48,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                ways: 8,
                latency: 10,
                mshrs: 64,
            },
            llc_slice: CacheConfig {
                size_bytes: 4 << 20,
                ways: 16,
                latency: 25,
                mshrs: 96,
            },
            llc_slices: 8,
            dram: DramConfig::hbm2e(1),
            l1_stride_degree: 2,
            l2_best_offset: true,
            accel_outstanding: 128,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_parameters_match_paper() {
        let cfg = neoverse_n1_system();
        assert_eq!(cfg.cores(), 8);
        assert_eq!(cfg.core.rob, 224);
        assert_eq!(cfg.core.lq, 96);
        assert_eq!(cfg.core.sve_bits, 512);
        assert_eq!(cfg.mem.l1.size_bytes, 64 << 10);
        assert_eq!(cfg.mem.l1.mshrs, 32);
        assert_eq!(cfg.mem.l2.size_bytes, 512 << 10);
        assert_eq!(cfg.mem.l2.mshrs, 64);
        assert_eq!(cfg.mem.llc_slices, 8);
        assert_eq!(cfg.mem.llc_slice.size_bytes, 1 << 20);
        assert_eq!(cfg.mem.llc_slice.mshrs, 128);
        assert_eq!(cfg.mem.dram.channels, 4);
        assert_eq!(cfg.mem.accel_outstanding, 128);
    }

    #[test]
    fn fig3_configs_preserve_the_paper_contrast() {
        let a = a64fx_like();
        let g = graviton3_like();
        // A64FX: more per-core bandwidth.
        let a_bw = a.mem.dram.peak_bytes_per_cycle() * a.core.freq_ghz;
        let g_bw = g.mem.dram.peak_bytes_per_cycle() * g.core.freq_ghz;
        assert!(a_bw > 3.0 * g_bw, "A64FX must have ≫ per-core bandwidth");
        // Graviton 3: bigger window and caches.
        assert!(g.core.rob > 2 * a.core.rob);
        assert!(g.mem.l2.size_bytes > a.mem.l2.size_bytes);
    }

    #[test]
    fn sve_override() {
        let cfg = neoverse_n1_with_sve(256);
        assert_eq!(cfg.core.sve_lanes(), 4);
    }
}
