//! Out-of-order core model.
//!
//! A ROB-based model with the structures that matter for sparse tensor
//! code: a gshare branch predictor whose mispredictions block fetch
//! (frontend stalls), load/store queues and L1 MSHRs that bound
//! memory-level parallelism (backend stalls), and in-order commit with
//! top-down cycle accounting matching the methodology of Figures 3 and 11.
//!
//! Ops carry explicit dependencies, so issue timing is
//! `max(dispatch + 1, producers ready)`; loads then traverse the memory
//! hierarchy. Wrong-path execution is not modeled — a misprediction costs
//! the fetch-redirect bubble, which is the first-order effect the paper
//! measures.

use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::bpred::BranchPredictor;
use crate::memsys::MemSys;
use crate::op::{Op, OpKind};

/// Configuration of one core.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// Ops dispatched into the ROB per cycle.
    pub fetch_width: usize,
    /// Ops committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
    /// Fetch-redirect penalty on a branch misprediction (cycles).
    pub mispredict_penalty: u64,
    /// Scalar integer latency.
    pub int_lat: u64,
    /// Scalar floating-point latency.
    pub fp_lat: u64,
    /// SIMD op latency.
    pub vec_lat: u64,
    /// SVE vector width in bits (8 f64 lanes at 512).
    pub sve_bits: u32,
    /// Load-issue ports (element loads and gather elements contend here).
    pub load_ports: usize,
    /// Store-issue ports.
    pub store_ports: usize,
    /// SIMD/FP pipes.
    pub vec_ports: usize,
    /// Clock frequency in GHz (for GFLOP/s conversion).
    pub freq_ghz: f64,
}

impl CoreConfig {
    /// The Table 5 Neoverse-N1-like core.
    pub fn neoverse_n1_like() -> Self {
        Self {
            fetch_width: 4,
            commit_width: 4,
            rob: 224,
            lq: 96,
            sq: 96,
            mispredict_penalty: 12,
            int_lat: 1,
            fp_lat: 4,
            vec_lat: 4,
            sve_bits: 512,
            load_ports: 2,
            store_ports: 1,
            vec_ports: 2,
            freq_ghz: 2.4,
        }
    }

    /// f64 lanes per SVE vector.
    pub fn sve_lanes(&self) -> usize {
        (self.sve_bits / 64) as usize
    }
}

/// Per-core cycle accounting in the style of Figures 3 and 11.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreStats {
    /// Cycles in which at least one op committed.
    pub committing: u64,
    /// Cycles stalled with an empty ROB (fetch-bound).
    pub frontend: u64,
    /// Cycles stalled with an incomplete ROB head (memory/execute-bound).
    pub backend: u64,
    /// Total cycles simulated (including idle tail).
    pub cycles: u64,
    /// Ops committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Sum of load-to-use latencies (completion − issue).
    pub load_latency_sum: u64,
    /// FLOPs committed.
    pub flops: u64,
    /// Branches committed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
}

impl CoreStats {
    /// Average load-to-use latency in cycles.
    pub fn avg_load_to_use(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads as f64
        }
    }

    /// Fraction of cycles in each class `(committing, frontend, backend)`.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.cycles.max(1) as f64;
        (
            self.committing as f64 / total,
            self.frontend as f64 / total,
            self.backend as f64 / total,
        )
    }

    /// Merges another core's stats into this one (for aggregation).
    pub fn merge(&mut self, other: &CoreStats) {
        self.committing += other.committing;
        self.frontend += other.frontend;
        self.backend += other.backend;
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.loads += other.loads;
        self.load_latency_sum += other.load_latency_sum;
        self.flops += other.flops;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    complete: u64,
    flops: u32,
    is_load: bool,
    load_latency: u32,
    is_branch: bool,
    chunk: Option<u32>,
}

/// Source of the op stream consumed by a core.
pub trait OpSource {
    /// Returns the next op if one is available and visible at `now`.
    /// Returning `None` either means the stream ended ([`OpSource::done`])
    /// or nothing is deliverable yet this cycle.
    fn next_visible(&mut self, now: u64) -> Option<Op>;

    /// Whether the stream has ended (no more ops will ever arrive).
    fn done(&mut self) -> bool;

    /// Earliest future cycle at which a currently-withheld op becomes
    /// visible, if known (lets the system skip idle cycles).
    fn next_visible_at(&self) -> Option<u64> {
        None
    }
}

/// An [`OpSource`] over a pre-recorded op vector (tests, callbacks).
#[derive(Debug, Default)]
pub struct SliceSource {
    ops: VecDeque<Op>,
}

impl SliceSource {
    /// Creates a source over `ops`.
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops: ops.into() }
    }
}

impl OpSource for SliceSource {
    fn next_visible(&mut self, now: u64) -> Option<Op> {
        if self.ops.front().is_some_and(|op| op.visible_at <= now) {
            self.ops.pop_front()
        } else {
            None
        }
    }

    fn done(&mut self) -> bool {
        self.ops.is_empty()
    }

    fn next_visible_at(&self) -> Option<u64> {
        self.ops.front().map(|op| op.visible_at)
    }
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    id: usize,
    rob: VecDeque<RobEntry>,
    ready: HashMap<u64, u64>,
    lq: BinaryHeap<std::cmp::Reverse<u64>>,
    sq: BinaryHeap<std::cmp::Reverse<u64>>,
    load_ports: Vec<u64>,
    store_ports: Vec<u64>,
    vec_ports: Vec<u64>,
    bpred: BranchPredictor,
    fetch_blocked_until: u64,
    /// Accumulated statistics.
    pub stats: CoreStats,
    #[cfg(feature = "trace")]
    trace: Option<tmu_trace::ComponentId>,
    /// Last emitted top-down class (0 committing, 1 frontend, 2 backend);
    /// 3 means "none yet" so the first classified cycle always emits.
    #[cfg(feature = "trace")]
    last_class: u8,
}

impl Core {
    /// Creates core `id` with configuration `cfg`.
    pub fn new(id: usize, cfg: CoreConfig) -> Self {
        Self {
            cfg,
            id,
            rob: VecDeque::with_capacity(cfg.rob),
            ready: HashMap::new(),
            lq: BinaryHeap::new(),
            sq: BinaryHeap::new(),
            load_ports: vec![0; cfg.load_ports.max(1)],
            store_ports: vec![0; cfg.store_ports.max(1)],
            vec_ports: vec![0; cfg.vec_ports.max(1)],
            bpred: BranchPredictor::default(),
            fetch_blocked_until: 0,
            stats: CoreStats::default(),
            #[cfg(feature = "trace")]
            trace: None,
            #[cfg(feature = "trace")]
            last_class: 3,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Attaches this core to a tracer component: subsequent ticks emit
    /// stall-class transitions and LSQ-stall events against `id` when a
    /// tracer is installed.
    #[cfg(feature = "trace")]
    pub fn set_trace(&mut self, id: tmu_trace::ComponentId) {
        self.trace = Some(id);
    }

    /// Whether the core has drained all in-flight work.
    pub fn idle(&self) -> bool {
        self.rob.is_empty()
    }

    /// Completion cycle of the ROB head, if any (for idle-cycle skipping).
    pub fn head_complete(&self) -> Option<u64> {
        self.rob.front().map(|e| e.complete)
    }

    /// Cycle until which fetch is blocked by a misprediction redirect.
    pub fn fetch_blocked(&self) -> u64 {
        self.fetch_blocked_until
    }

    /// Whether the ROB is at capacity.
    pub fn rob_full(&self) -> bool {
        self.rob.len() >= self.cfg.rob
    }

    /// Accounts for `delta` skipped idle cycles (clock-jump optimization):
    /// a core waiting on its ROB head is backend-stalled, an empty core is
    /// frontend-stalled.
    pub fn account_gap(&mut self, delta: u64) {
        self.stats.cycles += delta;
        if self.rob.is_empty() {
            self.stats.frontend += delta;
        } else {
            self.stats.backend += delta;
        }
    }

    fn dep_ready(&self, op: &Op) -> u64 {
        op.deps
            .iter()
            .map(|d| self.ready.get(&d.0).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Claims the earliest-free issue port at or after `t`; the port is
    /// then busy for one cycle. Models issue-width contention: gathers
    /// cracked into element loads serialize over the load ports.
    fn claim_port(ports: &mut [u64], t: u64) -> u64 {
        let slot = ports
            .iter_mut()
            .min_by_key(|free| **free)
            .expect("ports non-empty");
        let start = t.max(*slot);
        *slot = start + 1;
        start
    }

    /// Frees queue slots whose op completed at or before `t`; returns the
    /// cycle the next slot frees if the queue is at capacity.
    fn queue_gate(heap: &mut BinaryHeap<std::cmp::Reverse<u64>>, cap: usize, t: u64) -> u64 {
        while let Some(&std::cmp::Reverse(done)) = heap.peek() {
            if done <= t && !heap.is_empty() {
                heap.pop();
            } else {
                break;
            }
        }
        if heap.len() >= cap {
            heap.peek().map(|r| r.0).unwrap_or(t)
        } else {
            t
        }
    }

    /// Advances the core by one cycle. Committed chunk markers are pushed
    /// into `acks`. Returns the number of ops committed this cycle.
    pub fn tick(
        &mut self,
        now: u64,
        source: &mut dyn OpSource,
        mem: &mut MemSys,
        acks: &mut Vec<u32>,
    ) -> usize {
        // ---- Commit ----
        let mut committed = 0;
        while committed < self.cfg.commit_width {
            match self.rob.front() {
                Some(head) if head.complete <= now => {
                    let e = self.rob.pop_front().expect("peeked");
                    self.ready.remove(&e.seq);
                    self.stats.committed += 1;
                    self.stats.flops += e.flops as u64;
                    if e.is_load {
                        self.stats.loads += 1;
                        self.stats.load_latency_sum += e.load_latency as u64;
                    }
                    if e.is_branch {
                        self.stats.branches += 1;
                    }
                    if let Some(chunk) = e.chunk {
                        acks.push(chunk);
                    }
                    committed += 1;
                }
                _ => break,
            }
        }

        // ---- Dispatch ----
        let mut dispatched = 0;
        if now >= self.fetch_blocked_until {
            while dispatched < self.cfg.fetch_width && self.rob.len() < self.cfg.rob {
                let Some(op) = source.next_visible(now) else {
                    break;
                };
                self.dispatch(op, now, mem);
                dispatched += 1;
                // A mispredicted branch ends the fetch group.
                if now < self.fetch_blocked_until {
                    break;
                }
            }
        }

        // ---- Cycle classification (top-down style) ----
        self.stats.cycles += 1;
        let class: u8 = if committed > 0 {
            self.stats.committing += 1;
            0
        } else if self.rob.is_empty() {
            self.stats.frontend += 1;
            1
        } else {
            self.stats.backend += 1;
            2
        };
        #[cfg(feature = "trace")]
        if class != self.last_class {
            self.last_class = class;
            if let Some(id) = self.trace {
                tmu_trace::with(|tr| {
                    tr.event(id, now, tmu_trace::EventKind::StallClass, u64::from(class));
                });
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = class;
        committed
    }

    fn dispatch(&mut self, op: Op, now: u64, mem: &mut MemSys) {
        let dep_ready = self.dep_ready(&op);
        let exec_start = dep_ready.max(now + 1);
        let cfg = self.cfg;
        let mut entry = RobEntry {
            seq: op.id.0,
            complete: exec_start,
            flops: 0,
            is_load: false,
            load_latency: 0,
            is_branch: false,
            chunk: None,
        };
        match op.kind {
            OpKind::IntAlu => entry.complete = exec_start + cfg.int_lat,
            OpKind::FpAlu { flops } => {
                entry.complete = exec_start + cfg.fp_lat;
                entry.flops = flops;
            }
            OpKind::VecAlu { flops } => {
                let issue = Self::claim_port(&mut self.vec_ports, exec_start);
                entry.complete = issue + cfg.vec_lat;
                entry.flops = flops;
            }
            OpKind::Load { .. } | OpKind::VecLoad { .. } => {
                let (addr, bytes) = match op.kind {
                    OpKind::Load { addr, bytes } | OpKind::VecLoad { addr, bytes } => (addr, bytes),
                    _ => unreachable!(),
                };
                let gated = Self::queue_gate(&mut self.lq, cfg.lq, exec_start).max(exec_start);
                #[cfg(feature = "trace")]
                if gated > exec_start {
                    if let Some(id) = self.trace {
                        tmu_trace::with(|tr| {
                            tr.event(id, now, tmu_trace::EventKind::LsqStall, gated - exec_start);
                        });
                    }
                }
                let issue = Self::claim_port(&mut self.load_ports, gated);
                let complete = mem.read(self.id, op.site, addr, bytes, issue);
                self.lq.push(std::cmp::Reverse(complete));
                entry.complete = complete;
                entry.is_load = true;
                entry.load_latency = (complete - issue) as u32;
            }
            OpKind::Store { addr, bytes } => {
                let gated = Self::queue_gate(&mut self.sq, cfg.sq, exec_start).max(exec_start);
                #[cfg(feature = "trace")]
                if gated > exec_start {
                    if let Some(id) = self.trace {
                        tmu_trace::with(|tr| {
                            tr.event(id, now, tmu_trace::EventKind::LsqStall, gated - exec_start);
                        });
                    }
                }
                let issue = Self::claim_port(&mut self.store_ports, gated);
                let owned = mem.write(self.id, addr, bytes, issue);
                self.sq.push(std::cmp::Reverse(owned));
                // The store retires through the store buffer.
                entry.complete = issue + 1;
            }
            OpKind::Branch { taken } => {
                let resolve = exec_start + 1;
                entry.complete = resolve;
                entry.is_branch = true;
                if self.bpred.mispredicted(op.site.0, taken) {
                    self.stats.mispredicts += 1;
                    self.fetch_blocked_until = resolve + cfg.mispredict_penalty;
                }
            }
            OpKind::ChunkEnd { chunk } => {
                entry.complete = now;
                entry.chunk = Some(chunk);
            }
        }
        self.ready.insert(op.id.0, entry.complete);
        self.rob.push_back(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, VecMachine};
    use crate::memsys::MemSysConfig;
    use crate::op::{Deps, Site};

    fn run_to_completion(core: &mut Core, ops: Vec<Op>, mem: &mut MemSys) -> u64 {
        let mut src = SliceSource::new(ops);
        let mut acks = Vec::new();
        let mut now = 0;
        while !(src.done() && core.idle()) {
            core.tick(now, &mut src, mem, &mut acks);
            now += 1;
            assert!(now < 10_000_000, "runaway simulation");
        }
        now
    }

    #[test]
    fn independent_alu_ops_pipeline() {
        let mut m = VecMachine::new();
        for _ in 0..1000 {
            m.int_op(Deps::NONE);
        }
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut core = Core::new(0, CoreConfig::neoverse_n1_like());
        let cycles = run_to_completion(&mut core, m.take(), &mut mem);
        // 1000 ops at 4-wide ≈ 250 cycles (+pipeline fill).
        assert!(cycles < 400, "took {cycles}");
        assert_eq!(core.stats.committed, 1000);
        assert!(core.stats.committing > core.stats.backend);
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut m = VecMachine::new();
        let mut prev = m.fp_op(1, Deps::NONE);
        for _ in 0..99 {
            prev = m.fp_op(1, Deps::from(prev));
        }
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut core = Core::new(0, CoreConfig::neoverse_n1_like());
        let cycles = run_to_completion(&mut core, m.take(), &mut mem);
        // 100 chained fp ops × 4-cycle latency ≥ 400 cycles.
        assert!(cycles >= 400, "chain must serialize, took {cycles}");
    }

    #[test]
    fn random_branches_cause_frontend_stalls() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut m = VecMachine::new();
        for _ in 0..2000 {
            m.branch(Site(5), rng.gen(), Deps::NONE);
            m.int_op(Deps::NONE);
        }
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut core = Core::new(0, CoreConfig::neoverse_n1_like());
        run_to_completion(&mut core, m.take(), &mut mem);
        let (_, frontend, _) = core.stats.breakdown();
        assert!(
            frontend > 0.3,
            "random branches must produce frontend stalls, got {frontend}"
        );
        assert!(core.stats.mispredicts > 400);
    }

    #[test]
    fn dependent_misses_cause_backend_stalls() {
        // Pointer-chase with irregular strides (so no prefetcher can help):
        // each load's address depends on the previous one.
        let mut m = VecMachine::new();
        let mut prev = m.load(Site(1), 0x100_000, 8, Deps::NONE);
        for i in 1..200u64 {
            let addr = 0x100_000 + (i * 7919 % 512) * 8192;
            prev = m.load(Site(1), addr, 8, Deps::from(prev));
        }
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut core = Core::new(0, CoreConfig::neoverse_n1_like());
        run_to_completion(&mut core, m.take(), &mut mem);
        let (_, _, backend) = core.stats.breakdown();
        assert!(
            backend > 0.7,
            "serialized misses must be backend-bound, got {backend}"
        );
        assert!(core.stats.avg_load_to_use() > 50.0);
    }

    #[test]
    fn independent_misses_overlap() {
        // Same 200 distant lines but independent: MLP must compress time.
        let build = |dep: bool| {
            let mut m = VecMachine::new();
            let mut prev = m.load(Site(1), 0x100_000, 8, Deps::NONE);
            for i in 1..200u64 {
                let deps = if dep { Deps::from(prev) } else { Deps::NONE };
                prev = m.load(Site(1), 0x100_000 + i * 8192, 8, deps);
            }
            m.take()
        };
        let mut mem1 = MemSys::new(MemSysConfig::table5(1));
        let mut c1 = Core::new(0, CoreConfig::neoverse_n1_like());
        let serial = run_to_completion(&mut c1, build(true), &mut mem1);
        let mut mem2 = MemSys::new(MemSysConfig::table5(1));
        let mut c2 = Core::new(0, CoreConfig::neoverse_n1_like());
        let parallel = run_to_completion(&mut c2, build(false), &mut mem2);
        assert!(
            parallel * 4 < serial,
            "MLP should give ≥4× ({parallel} vs {serial})"
        );
    }

    #[test]
    fn chunk_markers_are_acked_in_order() {
        let mut m = VecMachine::new();
        m.int_op(Deps::NONE);
        m.emit(Site(0), OpKind::ChunkEnd { chunk: 0 }, Deps::NONE);
        m.int_op(Deps::NONE);
        m.emit(Site(0), OpKind::ChunkEnd { chunk: 1 }, Deps::NONE);
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut core = Core::new(0, CoreConfig::neoverse_n1_like());
        let mut src = SliceSource::new(m.take());
        let mut acks = Vec::new();
        let mut now = 0;
        while !(src.done() && core.idle()) {
            core.tick(now, &mut src, &mut mem, &mut acks);
            now += 1;
        }
        assert_eq!(acks, vec![0, 1]);
    }

    #[test]
    fn visible_at_gates_dispatch() {
        let mut m = VecMachine::new();
        m.visible_at = 100;
        m.int_op(Deps::NONE);
        let ops = m.take();
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut core = Core::new(0, CoreConfig::neoverse_n1_like());
        let mut src = SliceSource::new(ops);
        let mut acks = Vec::new();
        for now in 0..99 {
            core.tick(now, &mut src, &mut mem, &mut acks);
            assert!(core.idle(), "op must stay withheld until cycle 100");
        }
        core.tick(100, &mut src, &mut mem, &mut acks);
        assert!(!core.idle());
    }
}
