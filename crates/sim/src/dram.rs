//! HBM2e memory channel model.
//!
//! Each channel is an independently-queued resource delivering one 64 B
//! cacheline per `cycles_per_line` core cycles (37.5 GB/s at 2.4 GHz ⇒
//! ≈4.1 cycles/line). Banks keep an open row; row hits are served with
//! `t_row_hit` latency and misses with `t_row_miss` (precharge+activate),
//! approximating FR-FCFS scheduling by making locality cheap rather than by
//! literal queue reordering. Cacheline addresses are interleaved across
//! channels and across banks inside a channel.

use crate::addr::CACHELINE;

/// Configuration of the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Core cycles to stream one cacheline over a channel's data bus.
    pub cycles_per_line: f64,
    /// Access latency when the target row is open (core cycles).
    pub t_row_hit: u64,
    /// Access latency on a row conflict (core cycles).
    pub t_row_miss: u64,
    /// Row size in bytes (open-page granularity).
    pub row_bytes: u64,
}

impl DramConfig {
    /// The paper's Table 5 memory: 4 HBM2e channels, 37.5 GB/s each,
    /// FR-FCFS, at a 2.4 GHz core clock.
    pub fn hbm2e_4ch() -> Self {
        Self {
            channels: 4,
            banks: 16,
            cycles_per_line: 64.0 / 37.5e9 * 2.4e9, // ≈ 4.096
            t_row_hit: 56,
            t_row_miss: 110,
            row_bytes: 2048,
        }
    }

    /// Same channel parameters with a different channel count (used by the
    /// Fig. 3 A64FX-like / Graviton3-like configurations).
    pub fn hbm2e(channels: usize) -> Self {
        Self {
            channels,
            ..Self::hbm2e_4ch()
        }
    }

    /// Peak bandwidth in bytes per core cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * CACHELINE as f64 / self.cycles_per_line
    }
}

#[derive(Debug, Clone)]
struct Channel {
    bus_free: u64,
    open_rows: Vec<u64>,
    /// Fractional accumulator so non-integer cycles_per_line stays exact.
    bus_carry: f64,
}

/// The DRAM subsystem: all channels plus traffic accounting.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    /// Cachelines read from DRAM.
    pub lines_read: u64,
    /// Cachelines written back to DRAM.
    pub lines_written: u64,
    /// Row-buffer hits observed.
    pub row_hits: u64,
    /// Row-buffer misses observed.
    pub row_misses: u64,
    #[cfg(feature = "trace")]
    trace: Option<tmu_trace::ComponentId>,
}

impl Dram {
    /// Creates a DRAM subsystem from `config`.
    pub fn new(config: DramConfig) -> Self {
        let channels = (0..config.channels)
            .map(|_| Channel {
                bus_free: 0,
                open_rows: vec![u64::MAX; config.banks],
                bus_carry: 0.0,
            })
            .collect();
        Self {
            config,
            channels,
            lines_read: 0,
            lines_written: 0,
            row_hits: 0,
            row_misses: 0,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    /// The configuration this subsystem was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Attaches the DRAM model to a tracer component: subsequent accesses
    /// emit row-open/row-hit events against `id` when a tracer is installed.
    #[cfg(feature = "trace")]
    pub fn set_trace(&mut self, id: tmu_trace::ComponentId) {
        self.trace = Some(id);
    }

    /// Number of banks currently holding an open row, across all channels
    /// (row-buffer state diagnostics; sampled by the trace subsystem).
    pub fn open_rows(&self) -> usize {
        self.channels
            .iter()
            .map(|ch| ch.open_rows.iter().filter(|&&r| r != u64::MAX).count())
            .sum()
    }

    fn channel_of(&self, line_addr: u64) -> usize {
        ((line_addr / CACHELINE) % self.config.channels as u64) as usize
    }

    /// Serves a cacheline request arriving at `cycle`; returns the
    /// completion cycle. `is_write` requests are writebacks (they occupy
    /// bus time but their completion is not awaited by anyone).
    pub fn access(&mut self, line_addr: u64, cycle: u64, is_write: bool) -> u64 {
        let ch_idx = self.channel_of(line_addr);
        let cfg = self.config;
        let ch = &mut self.channels[ch_idx];
        let within = line_addr / CACHELINE / cfg.channels as u64;
        let bank = (within % cfg.banks as u64) as usize;
        let row = within / cfg.banks as u64 * CACHELINE / cfg.row_bytes.max(1);

        let row_hit = ch.open_rows[bank] == row;
        if row_hit {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
            ch.open_rows[bank] = row;
        }
        #[cfg(feature = "trace")]
        if let Some(id) = self.trace {
            let kind = if row_hit {
                tmu_trace::EventKind::DramRowHit
            } else {
                tmu_trace::EventKind::DramRowOpen
            };
            let payload = ((ch_idx as u64) << 48) | (row & 0xFFFF_FFFF_FFFF);
            tmu_trace::with(|tr| tr.event(id, cycle, kind, payload));
        }
        let access_lat = if row_hit {
            cfg.t_row_hit
        } else {
            cfg.t_row_miss
        };

        let start = cycle.max(ch.bus_free);
        // Advance the bus with fractional-cycle accuracy.
        ch.bus_carry += cfg.cycles_per_line;
        let whole = ch.bus_carry as u64;
        ch.bus_carry -= whole as f64;
        ch.bus_free = start + whole;

        if is_write {
            self.lines_written += 1;
        } else {
            self.lines_read += 1;
        }
        start + access_lat
    }

    /// Total bytes moved to/from DRAM.
    pub fn bytes_moved(&self) -> u64 {
        (self.lines_read + self.lines_written) * CACHELINE
    }

    /// Resets traffic counters (timing state is preserved).
    pub fn reset_stats(&mut self) {
        self.lines_read = 0;
        self.lines_written = 0;
        self.row_hits = 0;
        self.row_misses = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn config_peak_bandwidth() {
        let cfg = DramConfig::hbm2e_4ch();
        // 150 GB/s at 2.4 GHz = 62.5 B/cycle.
        let bpc = cfg.peak_bytes_per_cycle();
        assert!((bpc - 62.5).abs() < 0.1, "bytes/cycle = {bpc}");
    }

    #[test]
    fn row_hits_are_faster() {
        let mut dram = Dram::new(DramConfig::hbm2e_4ch());
        let first = dram.access(0, 0, false);
        // Same line again (same row, far in the future so no queueing).
        let second = dram.access(0, 10_000, false) - 10_000;
        assert!(second < first, "row hit {second} must beat miss {first}");
        assert_eq!(dram.row_hits, 1);
        assert_eq!(dram.row_misses, 1);
    }

    #[test]
    fn single_channel_bandwidth_is_limited() {
        let mut dram = Dram::new(DramConfig::hbm2e(1));
        // Stream 1000 sequential lines all arriving at cycle 0.
        let mut last = 0;
        for i in 0..1000u64 {
            last = last.max(dram.access(i * CACHELINE, 0, false));
        }
        // Must take at least 1000 × 4.096 cycles of bus time.
        assert!(last as f64 >= 1000.0 * 4.0, "finished too fast: {last}");
        assert_eq!(dram.lines_read, 1000);
    }

    #[test]
    fn channels_are_independent() {
        let mut dram = Dram::new(DramConfig::hbm2e(4));
        // Lines 0..4 land on distinct channels; all can start at cycle 0.
        let times: Vec<u64> = (0..4u64)
            .map(|i| dram.access(i * CACHELINE, 0, false))
            .collect();
        let spread = times.iter().max().unwrap() - times.iter().min().unwrap();
        assert!(spread <= 1, "parallel channels must not queue: {times:?}");
    }

    #[test]
    fn open_rows_tracks_bank_state() {
        let mut dram = Dram::new(DramConfig::hbm2e_4ch());
        assert_eq!(dram.open_rows(), 0, "all banks start closed");
        dram.access(0, 0, false);
        assert_eq!(dram.open_rows(), 1);
        // Same bank, same row: still one open row.
        dram.access(0, 10, false);
        assert_eq!(dram.open_rows(), 1);
        // A different channel opens a second bank.
        dram.access(CACHELINE, 20, false);
        assert_eq!(dram.open_rows(), 2);
    }

    #[test]
    fn writes_count_separately() {
        let mut dram = Dram::new(DramConfig::hbm2e_4ch());
        dram.access(0, 0, false);
        dram.access(64, 0, true);
        assert_eq!(dram.lines_read, 1);
        assert_eq!(dram.lines_written, 1);
        assert_eq!(dram.bytes_moved(), 128);
    }
}
