//! Deterministic fault injection for resilience testing.
//!
//! The paper's §5.6 argues the TMU is OS-friendly because a marshaled
//! load can take a page fault, the engine can quiesce at a traversal-group
//! boundary, save a small architectural context, and resume bit-exactly.
//! This module provides the adversity side of that claim: a seeded
//! [`FaultPlan`] decides — at chosen load ordinals / cycles, or by a
//! seeded rate — when to inject which [`FaultKind`] into an attached
//! engine. The plan itself is pure bookkeeping (no simulator state): the
//! engine consults it at its injection points and reacts, so a plan drives
//! any [`crate::Accelerator`] implementation.
//!
//! Determinism: rate-based plans draw from a SplitMix64 stream seeded by
//! `spec.seed ^ salt` (the salt distinguishes engines of one run), so the
//! same configuration injects the same schedule on every host, worker
//! count, or run.

use serde::{Deserialize, Serialize};

/// The kinds of injected adversity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A marshaled stream load touches an unmapped page (or is NACKed):
    /// the access does not complete and the engine must trap precisely.
    PageFault,
    /// A transient DRAM-level retry: the load completes after an extra
    /// latency penalty. Functionally transparent.
    DramRetry,
    /// A transient NoC-level retry on the request path. Functionally
    /// transparent, like [`FaultKind::DramRetry`].
    NocRetry,
    /// The outQ consumer side applies backpressure: entry pushes stall
    /// for a configured window. Timing-only.
    OutQStall,
    /// The OS forcibly preempts the engine: quiesce, save context, and
    /// resume after the service window.
    Preempt,
}

impl FaultKind {
    /// Every kind, in discriminant order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::PageFault,
        FaultKind::DramRetry,
        FaultKind::NocRetry,
        FaultKind::OutQStall,
        FaultKind::Preempt,
    ];

    /// Kinds consulted per issued load (the rest are cycle-triggered).
    pub const LOAD_KINDS: [FaultKind; 3] = [
        FaultKind::PageFault,
        FaultKind::DramRetry,
        FaultKind::NocRetry,
    ];

    /// Stable bitmask bit for [`FaultSpec::kinds`].
    pub fn bit(self) -> u8 {
        match self {
            FaultKind::PageFault => 1 << 0,
            FaultKind::DramRetry => 1 << 1,
            FaultKind::NocRetry => 1 << 2,
            FaultKind::OutQStall => 1 << 3,
            FaultKind::Preempt => 1 << 4,
        }
    }

    /// Stable display name (used in stats dumps and trace payload docs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PageFault => "page_fault",
            FaultKind::DramRetry => "dram_retry",
            FaultKind::NocRetry => "noc_retry",
            FaultKind::OutQStall => "outq_stall",
            FaultKind::Preempt => "preempt",
        }
    }
}

/// Declarative fault configuration. Plain `Copy` data so it can ride
/// inside engine configurations (the TMU carries one in `TmuConfig`) and
/// participate in memo keys via `Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the injection schedule (combined with a per-engine salt).
    pub seed: u64,
    /// Expected injected faults per 100 000 issued loads; 0 disables
    /// rate-based injection entirely.
    pub rate_per_100k: u32,
    /// Bitmask of enabled [`FaultKind`]s (see [`FaultKind::bit`]).
    pub kinds: u8,
    /// Simulated OS fault-service latency in cycles (quiesce → resume).
    pub service_cycles: u32,
    /// Extra completion latency of a DRAM/NoC retry, in cycles.
    pub retry_cycles: u32,
    /// Length of an injected outQ backpressure stall, in cycles.
    pub stall_cycles: u32,
    /// Page faults the simulated OS is willing to service; one more and
    /// the engine retires with a typed error (graceful degradation).
    pub max_serviced: u32,
}

impl FaultSpec {
    /// No injection at all — the default, and byte-identical to the
    /// pre-fault-model behaviour.
    pub fn none() -> Self {
        Self {
            seed: 0,
            rate_per_100k: 0,
            kinds: 0,
            service_cycles: 0,
            retry_cycles: 0,
            stall_cycles: 0,
            max_serviced: 0,
        }
    }

    /// Rate-based injection of every fault kind with workable defaults:
    /// 500-cycle OS service window, 64-cycle retries, 256-cycle outQ
    /// stalls, and an effectively unlimited service budget.
    pub fn with_rate(seed: u64, rate_per_100k: u32) -> Self {
        Self {
            seed,
            rate_per_100k,
            kinds: FaultKind::ALL.iter().fold(0, |m, k| m | k.bit()),
            service_cycles: 500,
            retry_cycles: 64,
            stall_cycles: 256,
            max_serviced: u32::MAX,
        }
    }

    /// Whether this spec can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.rate_per_100k > 0 && self.kinds != 0
    }

    /// Whether `kind` is enabled.
    pub fn enables(&self, kind: FaultKind) -> bool {
        self.kinds & kind.bit() != 0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// When a scripted [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At the n-th issued load (0-based ordinal across the engine).
    AtLoad(u64),
    /// At the first tick at or after the given cycle.
    AtCycle(u64),
}

/// One scripted injection: `kind` fires at `trigger`, once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What is injected.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault at the n-th issued load.
    pub fn at_load(ordinal: u64, kind: FaultKind) -> Self {
        Self {
            trigger: FaultTrigger::AtLoad(ordinal),
            kind,
        }
    }

    /// A fault at the given cycle.
    pub fn at_cycle(cycle: u64, kind: FaultKind) -> Self {
        Self {
            trigger: FaultTrigger::AtCycle(cycle),
            kind,
        }
    }
}

/// Counters of everything a [`FaultPlan`] injected and how the engine
/// coped. Surfaced through `OutQStats`, the `StatsRegistry`, and
/// `bench.json` rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Total faults injected (all kinds).
    pub injected: u64,
    /// Page faults / NACKs on stream loads.
    pub page_faults: u64,
    /// Transient DRAM retries.
    pub dram_retries: u64,
    /// Transient NoC retries.
    pub noc_retries: u64,
    /// Injected outQ backpressure stalls.
    pub outq_stalls: u64,
    /// Forced preemptions.
    pub preemptions: u64,
    /// Precise traps taken (quiesce + context save).
    pub traps: u64,
    /// Context restores (resume after OS service).
    pub restores: u64,
    /// Faults the OS refused to service (led to retirement).
    pub unserviceable: u64,
}

impl FaultStats {
    /// Records one injected fault of `kind`.
    pub fn record(&mut self, kind: FaultKind) {
        self.injected += 1;
        match kind {
            FaultKind::PageFault => self.page_faults += 1,
            FaultKind::DramRetry => self.dram_retries += 1,
            FaultKind::NocRetry => self.noc_retries += 1,
            FaultKind::OutQStall => self.outq_stalls += 1,
            FaultKind::Preempt => self.preemptions += 1,
        }
    }
}

/// SplitMix64 step — the same generator the vendored `rand` stub uses,
/// inlined so the fault model has no dependency beyond `std`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scale factor between the per-load rate and the per-cycle rate of the
/// cycle-triggered kinds (preemptions and outQ stalls are much rarer
/// events than load perturbations at equal `rate_per_100k`).
const CYCLE_RATE_DIVISOR: u64 = 64;

/// A deterministic injection schedule consumed by one engine.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: u64,
    events: Vec<FaultEvent>,
    fired: Vec<bool>,
    loads_seen: u64,
    /// Running injection/recovery counters (the engine also increments
    /// `traps`/`restores`/`unserviceable` here as it reacts).
    pub stats: FaultStats,
}

impl FaultPlan {
    /// A rate-based plan from `spec`; `salt` decorrelates engines sharing
    /// one spec (the TMU uses its outQ base address). Returns `None` for
    /// an inactive spec so fault-free runs carry no plan at all.
    pub fn from_spec(spec: FaultSpec, salt: u64) -> Option<Self> {
        if !spec.is_active() {
            return None;
        }
        Some(Self {
            spec,
            rng: spec.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            events: Vec::new(),
            fired: Vec::new(),
            loads_seen: 0,
            stats: FaultStats::default(),
        })
    }

    /// A scripted plan firing exactly `events` (tests pin injection
    /// points with this). `spec` supplies the latency/service parameters;
    /// its rate is ignored.
    pub fn with_events(spec: FaultSpec, events: Vec<FaultEvent>) -> Self {
        let fired = vec![false; events.len()];
        Self {
            spec,
            rng: spec.seed,
            events,
            fired,
            loads_seen: 0,
            stats: FaultStats::default(),
        }
    }

    /// The latency/service parameters of this plan.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Loads the engine has reported issuing so far.
    pub fn loads_seen(&self) -> u64 {
        self.loads_seen
    }

    fn rate_roll(&mut self, scale: u64) -> bool {
        let rate = u64::from(self.spec.rate_per_100k);
        rate > 0 && splitmix64(&mut self.rng) % (100_000 * scale) < rate
    }

    fn pick(&mut self, candidates: &[FaultKind]) -> Option<FaultKind> {
        let enabled: Vec<FaultKind> = candidates
            .iter()
            .copied()
            .filter(|&k| self.spec.enables(k))
            .collect();
        if enabled.is_empty() {
            return None;
        }
        let i = (splitmix64(&mut self.rng) % enabled.len() as u64) as usize;
        Some(enabled[i])
    }

    fn scripted(&mut self, matches: impl Fn(FaultTrigger) -> bool) -> Option<FaultKind> {
        for (i, ev) in self.events.iter().enumerate() {
            if !self.fired[i] && matches(ev.trigger) {
                self.fired[i] = true;
                return Some(ev.kind);
            }
        }
        None
    }

    /// Consulted by the engine once per load it is about to issue.
    /// Returns the fault to inject on this load, if any, and records it.
    pub fn on_load(&mut self) -> Option<FaultKind> {
        let ordinal = self.loads_seen;
        self.loads_seen += 1;
        let kind = self
            .scripted(|t| t == FaultTrigger::AtLoad(ordinal))
            .or_else(|| {
                if self.rate_roll(1) {
                    self.pick(&FaultKind::LOAD_KINDS)
                } else {
                    None
                }
            })?;
        self.stats.record(kind);
        Some(kind)
    }

    /// Consulted by the engine once per tick for cycle-triggered kinds
    /// (preemption, outQ stall). Records whatever it returns.
    pub fn on_cycle(&mut self, now: u64) -> Option<FaultKind> {
        let kind = self
            .scripted(|t| matches!(t, FaultTrigger::AtCycle(c) if c <= now))
            .or_else(|| {
                if self.rate_roll(CYCLE_RATE_DIVISOR) {
                    self.pick(&[FaultKind::OutQStall, FaultKind::Preempt])
                } else {
                    None
                }
            })?;
        self.stats.record(kind);
        Some(kind)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only: unwraps on known-Some fixtures
mod tests {
    use super::*;

    #[test]
    fn inactive_spec_builds_no_plan() {
        assert!(FaultPlan::from_spec(FaultSpec::none(), 7).is_none());
        assert!(FaultSpec::none() == FaultSpec::default());
        assert!(!FaultSpec::none().is_active());
        assert!(FaultSpec::with_rate(1, 10).is_active());
    }

    #[test]
    fn scripted_events_fire_once_at_their_trigger() {
        let spec = FaultSpec::with_rate(0, 0); // rate 0: scripted only
        let mut plan = FaultPlan::with_events(
            spec,
            vec![
                FaultEvent::at_load(2, FaultKind::PageFault),
                FaultEvent::at_cycle(100, FaultKind::Preempt),
            ],
        );
        assert_eq!(plan.on_load(), None);
        assert_eq!(plan.on_load(), None);
        assert_eq!(plan.on_load(), Some(FaultKind::PageFault));
        assert_eq!(plan.on_load(), None, "load events fire once");
        assert_eq!(plan.on_cycle(99), None);
        assert_eq!(plan.on_cycle(150), Some(FaultKind::Preempt), "late tick ok");
        assert_eq!(plan.on_cycle(151), None, "cycle events fire once");
        assert_eq!(plan.stats.injected, 2);
        assert_eq!(plan.stats.page_faults, 1);
        assert_eq!(plan.stats.preemptions, 1);
    }

    #[test]
    fn rate_plans_are_deterministic_and_seed_sensitive() {
        let run = |seed: u64, salt: u64| -> Vec<Option<FaultKind>> {
            let mut plan = FaultPlan::from_spec(FaultSpec::with_rate(seed, 5_000), salt).unwrap();
            (0..2_000).map(|_| plan.on_load()).collect()
        };
        assert_eq!(run(1, 0), run(1, 0), "same seed ⇒ same schedule");
        assert_ne!(run(1, 0), run(2, 0), "seed changes the schedule");
        assert_ne!(run(1, 0), run(1, 1), "salt decorrelates engines");
        let injected = run(1, 0).iter().flatten().count();
        assert!(
            (20..200).contains(&injected),
            "5% rate over 2000 loads ≈ 100 faults, got {injected}"
        );
    }

    #[test]
    fn kind_mask_filters_injection() {
        let mut spec = FaultSpec::with_rate(3, 50_000);
        spec.kinds = FaultKind::DramRetry.bit();
        let mut plan = FaultPlan::from_spec(spec, 0).unwrap();
        let kinds: Vec<FaultKind> = (0..500).filter_map(|_| plan.on_load()).collect();
        assert!(!kinds.is_empty());
        assert!(kinds.iter().all(|&k| k == FaultKind::DramRetry));
        assert_eq!(plan.stats.dram_retries as usize, kinds.len());
        assert_eq!(plan.stats.page_faults, 0);
    }
}
