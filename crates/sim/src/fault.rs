//! Deterministic fault injection for resilience testing.
//!
//! The paper's §5.6 argues the TMU is OS-friendly because a marshaled
//! load can take a page fault, the engine can quiesce at a traversal-group
//! boundary, save a small architectural context, and resume bit-exactly.
//! This module provides the adversity side of that claim: a seeded
//! [`FaultPlan`] decides — at chosen load ordinals / cycles, or by a
//! seeded rate — when to inject which [`FaultKind`] into an attached
//! engine. The plan itself is pure bookkeeping (no simulator state): the
//! engine consults it at its injection points and reacts, so a plan drives
//! any [`crate::Accelerator`] implementation.
//!
//! Determinism: rate-based plans draw from a SplitMix64 stream seeded by
//! `spec.seed ^ salt` (the salt distinguishes engines of one run), so the
//! same configuration injects the same schedule on every host, worker
//! count, or run.

use serde::{Deserialize, Serialize};

/// The kinds of injected adversity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A marshaled stream load touches an unmapped page (or is NACKed):
    /// the access does not complete and the engine must trap precisely.
    PageFault,
    /// A transient DRAM-level retry: the load completes after an extra
    /// latency penalty. Functionally transparent.
    DramRetry,
    /// A transient NoC-level retry on the request path. Functionally
    /// transparent, like [`FaultKind::DramRetry`].
    NocRetry,
    /// The outQ consumer side applies backpressure: entry pushes stall
    /// for a configured window. Timing-only.
    OutQStall,
    /// The OS forcibly preempts the engine: quiesce, save context, and
    /// resume after the service window.
    Preempt,
}

impl FaultKind {
    /// Every kind, in discriminant order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::PageFault,
        FaultKind::DramRetry,
        FaultKind::NocRetry,
        FaultKind::OutQStall,
        FaultKind::Preempt,
    ];

    /// Kinds consulted per issued load (the rest are cycle-triggered).
    pub const LOAD_KINDS: [FaultKind; 3] = [
        FaultKind::PageFault,
        FaultKind::DramRetry,
        FaultKind::NocRetry,
    ];

    /// Stable bitmask bit for [`FaultSpec::kinds`].
    pub fn bit(self) -> u8 {
        match self {
            FaultKind::PageFault => 1 << 0,
            FaultKind::DramRetry => 1 << 1,
            FaultKind::NocRetry => 1 << 2,
            FaultKind::OutQStall => 1 << 3,
            FaultKind::Preempt => 1 << 4,
        }
    }

    /// Stable display name (used in stats dumps and trace payload docs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PageFault => "page_fault",
            FaultKind::DramRetry => "dram_retry",
            FaultKind::NocRetry => "noc_retry",
            FaultKind::OutQStall => "outq_stall",
            FaultKind::Preempt => "preempt",
        }
    }
}

/// Declarative fault configuration. Plain `Copy` data so it can ride
/// inside engine configurations (the TMU carries one in `TmuConfig`) and
/// participate in memo keys via `Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the injection schedule (combined with a per-engine salt).
    pub seed: u64,
    /// Expected injected faults per 100 000 issued loads; 0 disables
    /// rate-based injection entirely.
    pub rate_per_100k: u32,
    /// Bitmask of enabled [`FaultKind`]s (see [`FaultKind::bit`]).
    pub kinds: u8,
    /// Simulated OS fault-service latency in cycles (quiesce → resume).
    pub service_cycles: u32,
    /// Extra completion latency of a DRAM/NoC retry, in cycles.
    pub retry_cycles: u32,
    /// Length of an injected outQ backpressure stall, in cycles.
    pub stall_cycles: u32,
    /// Page faults the simulated OS is willing to service; one more and
    /// the engine retires with a typed error (graceful degradation).
    pub max_serviced: u32,
}

impl FaultSpec {
    /// No injection at all — the default, and byte-identical to the
    /// pre-fault-model behaviour.
    pub fn none() -> Self {
        Self {
            seed: 0,
            rate_per_100k: 0,
            kinds: 0,
            service_cycles: 0,
            retry_cycles: 0,
            stall_cycles: 0,
            max_serviced: 0,
        }
    }

    /// Rate-based injection of every fault kind with workable defaults:
    /// 500-cycle OS service window, 64-cycle retries, 256-cycle outQ
    /// stalls, and an effectively unlimited service budget.
    pub fn with_rate(seed: u64, rate_per_100k: u32) -> Self {
        Self {
            seed,
            rate_per_100k,
            kinds: FaultKind::ALL.iter().fold(0, |m, k| m | k.bit()),
            service_cycles: 500,
            retry_cycles: 64,
            stall_cycles: 256,
            max_serviced: u32::MAX,
        }
    }

    /// Whether this spec can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.rate_per_100k > 0 && self.kinds != 0
    }

    /// Whether `kind` is enabled.
    pub fn enables(&self, kind: FaultKind) -> bool {
        self.kinds & kind.bit() != 0
    }

    /// The same spec with the seed re-derived for retry `attempt`.
    ///
    /// A job restarted after a serving-visible failure must not replay the
    /// exact fault schedule that killed it — a rate-based plan would
    /// otherwise deterministically re-kill the job on every attempt.
    /// Folding the attempt ordinal through a SplitMix64 scramble gives
    /// each incarnation its own decorrelated stream while keeping the
    /// whole retry sequence a pure function of `(seed, attempt)`.
    /// Attempt 0 is the identity, so first runs stay byte-identical to
    /// the configured spec.
    pub fn for_attempt(&self, attempt: u32) -> Self {
        if attempt == 0 || !self.is_active() {
            return *self;
        }
        let mut state = self.seed ^ u64::from(attempt).wrapping_mul(0xA24B_AED4_963E_E407);
        let seed = splitmix64(&mut state);
        Self { seed, ..*self }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// When a scripted [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At the n-th issued load (0-based ordinal across the engine).
    AtLoad(u64),
    /// At the first tick at or after the given cycle.
    AtCycle(u64),
}

/// One scripted injection: `kind` fires at `trigger`, once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What is injected.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault at the n-th issued load.
    pub fn at_load(ordinal: u64, kind: FaultKind) -> Self {
        Self {
            trigger: FaultTrigger::AtLoad(ordinal),
            kind,
        }
    }

    /// A fault at the given cycle.
    pub fn at_cycle(cycle: u64, kind: FaultKind) -> Self {
        Self {
            trigger: FaultTrigger::AtCycle(cycle),
            kind,
        }
    }
}

/// Counters of everything a [`FaultPlan`] injected and how the engine
/// coped. Surfaced through `OutQStats`, the `StatsRegistry`, and
/// `bench.json` rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Total faults injected (all kinds).
    pub injected: u64,
    /// Page faults / NACKs on stream loads.
    pub page_faults: u64,
    /// Transient DRAM retries.
    pub dram_retries: u64,
    /// Transient NoC retries.
    pub noc_retries: u64,
    /// Injected outQ backpressure stalls.
    pub outq_stalls: u64,
    /// Forced preemptions.
    pub preemptions: u64,
    /// Precise traps taken (quiesce + context save).
    pub traps: u64,
    /// Context restores (resume after OS service).
    pub restores: u64,
    /// Faults the OS refused to service (led to retirement).
    pub unserviceable: u64,
}

impl FaultStats {
    /// Records one injected fault of `kind`.
    pub fn record(&mut self, kind: FaultKind) {
        self.injected += 1;
        match kind {
            FaultKind::PageFault => self.page_faults += 1,
            FaultKind::DramRetry => self.dram_retries += 1,
            FaultKind::NocRetry => self.noc_retries += 1,
            FaultKind::OutQStall => self.outq_stalls += 1,
            FaultKind::Preempt => self.preemptions += 1,
        }
    }
}

/// SplitMix64 step — the same generator the vendored `rand` stub uses,
/// inlined so the fault model has no dependency beyond `std`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scale factor between the per-load rate and the per-cycle rate of the
/// cycle-triggered kinds (preemptions and outQ stalls are much rarer
/// events than load perturbations at equal `rate_per_100k`).
const CYCLE_RATE_DIVISOR: u64 = 64;

/// A deterministic injection schedule consumed by one engine.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: u64,
    events: Vec<FaultEvent>,
    fired: Vec<bool>,
    loads_seen: u64,
    /// Running injection/recovery counters (the engine also increments
    /// `traps`/`restores`/`unserviceable` here as it reacts).
    pub stats: FaultStats,
}

impl FaultPlan {
    /// A rate-based plan from `spec`; `salt` decorrelates engines sharing
    /// one spec (the TMU uses its outQ base address). Returns `None` for
    /// an inactive spec so fault-free runs carry no plan at all.
    pub fn from_spec(spec: FaultSpec, salt: u64) -> Option<Self> {
        if !spec.is_active() {
            return None;
        }
        Some(Self {
            spec,
            rng: spec.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            events: Vec::new(),
            fired: Vec::new(),
            loads_seen: 0,
            stats: FaultStats::default(),
        })
    }

    /// A scripted plan firing exactly `events` (tests pin injection
    /// points with this). `spec` supplies the latency/service parameters;
    /// its rate is ignored.
    pub fn with_events(spec: FaultSpec, events: Vec<FaultEvent>) -> Self {
        let fired = vec![false; events.len()];
        Self {
            spec,
            rng: spec.seed,
            events,
            fired,
            loads_seen: 0,
            stats: FaultStats::default(),
        }
    }

    /// The latency/service parameters of this plan.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Loads the engine has reported issuing so far.
    pub fn loads_seen(&self) -> u64 {
        self.loads_seen
    }

    fn rate_roll(&mut self, scale: u64) -> bool {
        let rate = u64::from(self.spec.rate_per_100k);
        rate > 0 && splitmix64(&mut self.rng) % (100_000 * scale) < rate
    }

    fn pick(&mut self, candidates: &[FaultKind]) -> Option<FaultKind> {
        let enabled: Vec<FaultKind> = candidates
            .iter()
            .copied()
            .filter(|&k| self.spec.enables(k))
            .collect();
        if enabled.is_empty() {
            return None;
        }
        let i = (splitmix64(&mut self.rng) % enabled.len() as u64) as usize;
        Some(enabled[i])
    }

    fn scripted(&mut self, matches: impl Fn(FaultTrigger) -> bool) -> Option<FaultKind> {
        for (i, ev) in self.events.iter().enumerate() {
            if !self.fired[i] && matches(ev.trigger) {
                self.fired[i] = true;
                return Some(ev.kind);
            }
        }
        None
    }

    /// Consulted by the engine once per load it is about to issue.
    /// Returns the fault to inject on this load, if any, and records it.
    pub fn on_load(&mut self) -> Option<FaultKind> {
        let ordinal = self.loads_seen;
        self.loads_seen += 1;
        let kind = self
            .scripted(|t| t == FaultTrigger::AtLoad(ordinal))
            .or_else(|| {
                if self.rate_roll(1) {
                    self.pick(&FaultKind::LOAD_KINDS)
                } else {
                    None
                }
            })?;
        self.stats.record(kind);
        Some(kind)
    }

    /// Consulted by the engine once per tick for cycle-triggered kinds
    /// (preemption, outQ stall). Records whatever it returns.
    pub fn on_cycle(&mut self, now: u64) -> Option<FaultKind> {
        let kind = self
            .scripted(|t| matches!(t, FaultTrigger::AtCycle(c) if c <= now))
            .or_else(|| {
                if self.rate_roll(CYCLE_RATE_DIVISOR) {
                    self.pick(&[FaultKind::OutQStall, FaultKind::Preempt])
                } else {
                    None
                }
            })?;
        self.stats.record(kind);
        Some(kind)
    }
}

/// Serving-visible slot failures. Where [`FaultKind`] perturbs one engine
/// *inside* a run (and the engine recovers transparently), a slot fault
/// takes out the fault domain the engine runs in: the serving scheduler —
/// not the engine — must react, by restarting the victim job elsewhere or
/// declaring it failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotFaultKind {
    /// The slot dies outright: core, memory hierarchy, and the engine
    /// incarnation on it are lost. The slot reboots after a configured
    /// delay; the job restarts from its last checkpoint (or from scratch).
    Crash,
    /// The slot wedges: no forward progress until the progress watchdog
    /// fires. The job's incarnation is lost, the slot burns one watchdog
    /// window, then reboots.
    Hang,
    /// The TMU on the slot degrades to unserviceable mid-job (the §5.6
    /// OS refuses further fault service). The slot survives; the job's
    /// incarnation is lost.
    Degrade,
}

impl SlotFaultKind {
    /// Every kind, in discriminant order.
    pub const ALL: [SlotFaultKind; 3] = [
        SlotFaultKind::Crash,
        SlotFaultKind::Hang,
        SlotFaultKind::Degrade,
    ];

    /// Stable bitmask bit for [`SlotFaultSpec::kinds`].
    pub fn bit(self) -> u8 {
        match self {
            SlotFaultKind::Crash => 1 << 0,
            SlotFaultKind::Hang => 1 << 1,
            SlotFaultKind::Degrade => 1 << 2,
        }
    }

    /// Stable display name (stats dumps, trace payload docs, bench text).
    pub fn name(self) -> &'static str {
        match self {
            SlotFaultKind::Crash => "crash",
            SlotFaultKind::Hang => "hang",
            SlotFaultKind::Degrade => "degrade",
        }
    }
}

/// Declarative slot-fault configuration. Plain `Copy` data so it can ride
/// inside a serving configuration the way [`FaultSpec`] rides in
/// `TmuConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotFaultSpec {
    /// Seed of the injection schedule (combined with a per-slot salt).
    pub seed: u64,
    /// Expected injected slot faults per 1 000 completed scheduling
    /// quanta; 0 disables rate-based injection entirely.
    pub rate_per_1k: u32,
    /// Bitmask of enabled [`SlotFaultKind`]s (see [`SlotFaultKind::bit`]).
    pub kinds: u8,
    /// Cycles a crashed or hung slot stays down before it reboots.
    pub reboot_cycles: u64,
}

impl SlotFaultSpec {
    /// No slot faults at all — the default; serving behaviour is
    /// byte-identical to the pre-resilience scheduler.
    pub fn none() -> Self {
        Self {
            seed: 0,
            rate_per_1k: 0,
            kinds: 0,
            reboot_cycles: 0,
        }
    }

    /// Rate-based injection of every slot-fault kind with a 2 000-cycle
    /// reboot penalty.
    pub fn with_rate(seed: u64, rate_per_1k: u32) -> Self {
        Self {
            seed,
            rate_per_1k,
            kinds: SlotFaultKind::ALL.iter().fold(0, |m, k| m | k.bit()),
            reboot_cycles: 2_000,
        }
    }

    /// Whether this spec can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.rate_per_1k > 0 && self.kinds != 0
    }

    /// Whether `kind` is enabled.
    pub fn enables(&self, kind: SlotFaultKind) -> bool {
        self.kinds & kind.bit() != 0
    }
}

impl Default for SlotFaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// One scripted slot fault: `kind` fires when the plan is consulted for
/// the `at_quantum`-th time (0-based). Tests pin exact failure points
/// with this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotFaultEvent {
    /// 0-based ordinal of the consultation ([`SlotFaultPlan::on_quantum`]
    /// call) at which the fault fires.
    pub at_quantum: u64,
    /// What is injected.
    pub kind: SlotFaultKind,
}

/// Counters of injected (or observed) slot faults, aggregated by the
/// serving layer across all slots of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotFaultStats {
    /// Total slot faults (all kinds).
    pub injected: u64,
    /// Slot crashes.
    pub crashes: u64,
    /// Slot hangs (watchdog-caught).
    pub hangs: u64,
    /// TMU-unserviceable degrades.
    pub degrades: u64,
}

impl SlotFaultStats {
    /// Records one slot fault of `kind`.
    pub fn record(&mut self, kind: SlotFaultKind) {
        self.injected += 1;
        match kind {
            SlotFaultKind::Crash => self.crashes += 1,
            SlotFaultKind::Hang => self.hangs += 1,
            SlotFaultKind::Degrade => self.degrades += 1,
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &SlotFaultStats) {
        self.injected += other.injected;
        self.crashes += other.crashes;
        self.hangs += other.hangs;
        self.degrades += other.degrades;
    }
}

/// A deterministic slot-fault schedule consumed by one serving slot. The
/// scheduler consults it once per completed scheduling quantum that left
/// a job unfinished on the slot ([`SlotFaultPlan::on_quantum`]).
#[derive(Debug, Clone)]
pub struct SlotFaultPlan {
    spec: SlotFaultSpec,
    rng: u64,
    events: Vec<SlotFaultEvent>,
    fired: Vec<bool>,
    quanta_seen: u64,
    /// Running injection counters for this slot.
    pub stats: SlotFaultStats,
}

impl SlotFaultPlan {
    /// A rate-based plan from `spec`; `slot_salt` (the slot index)
    /// decorrelates slots sharing one spec. Returns `None` for an
    /// inactive spec so fault-free serving carries no plan at all.
    pub fn from_spec(spec: SlotFaultSpec, slot_salt: u64) -> Option<Self> {
        if !spec.is_active() {
            return None;
        }
        Some(Self {
            spec,
            rng: spec.seed ^ slot_salt.wrapping_mul(0xD6E8_FEB8_6659_FD93),
            events: Vec::new(),
            fired: Vec::new(),
            quanta_seen: 0,
            stats: SlotFaultStats::default(),
        })
    }

    /// A scripted plan firing exactly `events`; `spec` supplies the
    /// reboot penalty, its rate is ignored.
    pub fn with_events(spec: SlotFaultSpec, events: Vec<SlotFaultEvent>) -> Self {
        let fired = vec![false; events.len()];
        Self {
            spec,
            rng: spec.seed,
            events,
            fired,
            quanta_seen: 0,
            stats: SlotFaultStats::default(),
        }
    }

    /// The reboot/rate parameters of this plan.
    pub fn spec(&self) -> &SlotFaultSpec {
        &self.spec
    }

    /// Consulted once per completed scheduling quantum that left a job
    /// running on the slot. Returns the slot fault to inject now, if any,
    /// and records it.
    pub fn on_quantum(&mut self) -> Option<SlotFaultKind> {
        let ordinal = self.quanta_seen;
        self.quanta_seen += 1;
        let scripted = self
            .events
            .iter()
            .enumerate()
            .find(|(i, ev)| !self.fired[*i] && ev.at_quantum == ordinal)
            .map(|(i, ev)| (i, ev.kind));
        let kind = match scripted {
            Some((i, kind)) => {
                self.fired[i] = true;
                Some(kind)
            }
            None => {
                let rate = u64::from(self.spec.rate_per_1k);
                if rate > 0 && splitmix64(&mut self.rng) % 1_000 < rate {
                    let enabled: Vec<SlotFaultKind> = SlotFaultKind::ALL
                        .iter()
                        .copied()
                        .filter(|&k| self.spec.enables(k))
                        .collect();
                    if enabled.is_empty() {
                        None
                    } else {
                        let i = (splitmix64(&mut self.rng) % enabled.len() as u64) as usize;
                        Some(enabled[i])
                    }
                } else {
                    None
                }
            }
        }?;
        self.stats.record(kind);
        Some(kind)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only: unwraps on known-Some fixtures
mod tests {
    use super::*;

    #[test]
    fn inactive_spec_builds_no_plan() {
        assert!(FaultPlan::from_spec(FaultSpec::none(), 7).is_none());
        assert!(FaultSpec::none() == FaultSpec::default());
        assert!(!FaultSpec::none().is_active());
        assert!(FaultSpec::with_rate(1, 10).is_active());
    }

    #[test]
    fn scripted_events_fire_once_at_their_trigger() {
        let spec = FaultSpec::with_rate(0, 0); // rate 0: scripted only
        let mut plan = FaultPlan::with_events(
            spec,
            vec![
                FaultEvent::at_load(2, FaultKind::PageFault),
                FaultEvent::at_cycle(100, FaultKind::Preempt),
            ],
        );
        assert_eq!(plan.on_load(), None);
        assert_eq!(plan.on_load(), None);
        assert_eq!(plan.on_load(), Some(FaultKind::PageFault));
        assert_eq!(plan.on_load(), None, "load events fire once");
        assert_eq!(plan.on_cycle(99), None);
        assert_eq!(plan.on_cycle(150), Some(FaultKind::Preempt), "late tick ok");
        assert_eq!(plan.on_cycle(151), None, "cycle events fire once");
        assert_eq!(plan.stats.injected, 2);
        assert_eq!(plan.stats.page_faults, 1);
        assert_eq!(plan.stats.preemptions, 1);
    }

    #[test]
    fn rate_plans_are_deterministic_and_seed_sensitive() {
        let run = |seed: u64, salt: u64| -> Vec<Option<FaultKind>> {
            let mut plan = FaultPlan::from_spec(FaultSpec::with_rate(seed, 5_000), salt).unwrap();
            (0..2_000).map(|_| plan.on_load()).collect()
        };
        assert_eq!(run(1, 0), run(1, 0), "same seed ⇒ same schedule");
        assert_ne!(run(1, 0), run(2, 0), "seed changes the schedule");
        assert_ne!(run(1, 0), run(1, 1), "salt decorrelates engines");
        let injected = run(1, 0).iter().flatten().count();
        assert!(
            (20..200).contains(&injected),
            "5% rate over 2000 loads ≈ 100 faults, got {injected}"
        );
    }

    #[test]
    fn kind_mask_filters_injection() {
        let mut spec = FaultSpec::with_rate(3, 50_000);
        spec.kinds = FaultKind::DramRetry.bit();
        let mut plan = FaultPlan::from_spec(spec, 0).unwrap();
        let kinds: Vec<FaultKind> = (0..500).filter_map(|_| plan.on_load()).collect();
        assert!(!kinds.is_empty());
        assert!(kinds.iter().all(|&k| k == FaultKind::DramRetry));
        assert_eq!(plan.stats.dram_retries as usize, kinds.len());
        assert_eq!(plan.stats.page_faults, 0);
    }

    /// Satellite pin: each retry attempt derives its own fault stream.
    /// Attempt 0 is the identity; attempts 1.. decorrelate the schedule
    /// deterministically, so a rate-based plan cannot re-kill the same
    /// job with the same schedule forever.
    #[test]
    fn retry_attempts_derive_distinct_deterministic_seeds() {
        let spec = FaultSpec::with_rate(41, 5_000);
        assert_eq!(spec.for_attempt(0), spec, "attempt 0 is the identity");
        // The derivation is a pure function of (seed, attempt)...
        assert_eq!(spec.for_attempt(3), spec.for_attempt(3));
        // ...and distinct attempts get distinct seeds (hence schedules).
        let seeds: Vec<u64> = (0..5).map(|a| spec.for_attempt(a).seed).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "attempts {i} and {j} collide");
            }
        }
        // Everything but the seed is preserved.
        let derived = spec.for_attempt(2);
        assert_eq!(derived.rate_per_100k, spec.rate_per_100k);
        assert_eq!(derived.kinds, spec.kinds);
        assert_eq!(derived.max_serviced, spec.max_serviced);
        // The derived stream really is a different schedule.
        let schedule = |s: FaultSpec| -> Vec<Option<FaultKind>> {
            let mut plan = FaultPlan::from_spec(s, 0).unwrap();
            (0..1_000).map(|_| plan.on_load()).collect()
        };
        assert_ne!(schedule(spec), schedule(spec.for_attempt(1)));
        // Inactive specs stay untouched (keeps fault-free configs stable).
        assert_eq!(FaultSpec::none().for_attempt(7), FaultSpec::none());
    }

    #[test]
    fn inactive_slot_spec_builds_no_plan() {
        assert!(SlotFaultPlan::from_spec(SlotFaultSpec::none(), 0).is_none());
        assert!(SlotFaultSpec::none() == SlotFaultSpec::default());
        assert!(!SlotFaultSpec::none().is_active());
        assert!(SlotFaultSpec::with_rate(1, 10).is_active());
    }

    #[test]
    fn scripted_slot_events_fire_once_at_their_quantum() {
        let spec = SlotFaultSpec {
            seed: 0,
            rate_per_1k: 0,
            kinds: 0,
            reboot_cycles: 100,
        };
        let mut plan = SlotFaultPlan::with_events(
            spec,
            vec![
                SlotFaultEvent {
                    at_quantum: 1,
                    kind: SlotFaultKind::Crash,
                },
                SlotFaultEvent {
                    at_quantum: 3,
                    kind: SlotFaultKind::Degrade,
                },
            ],
        );
        assert_eq!(plan.on_quantum(), None);
        assert_eq!(plan.on_quantum(), Some(SlotFaultKind::Crash));
        assert_eq!(plan.on_quantum(), None, "events fire once");
        assert_eq!(plan.on_quantum(), Some(SlotFaultKind::Degrade));
        assert_eq!(plan.on_quantum(), None);
        assert_eq!(plan.stats.injected, 2);
        assert_eq!(plan.stats.crashes, 1);
        assert_eq!(plan.stats.degrades, 1);
    }

    #[test]
    fn rate_slot_plans_are_deterministic_and_slot_decorrelated() {
        let run = |seed: u64, slot: u64| -> Vec<Option<SlotFaultKind>> {
            let mut plan = SlotFaultPlan::from_spec(SlotFaultSpec::with_rate(seed, 100), slot)
                .expect("active spec");
            (0..1_000).map(|_| plan.on_quantum()).collect()
        };
        assert_eq!(run(9, 0), run(9, 0), "same seed ⇒ same schedule");
        assert_ne!(run(9, 0), run(10, 0), "seed changes the schedule");
        assert_ne!(run(9, 0), run(9, 1), "slot salt decorrelates slots");
        let injected = run(9, 0).iter().flatten().count();
        assert!(
            (40..250).contains(&injected),
            "10% rate over 1000 quanta ≈ 100 faults, got {injected}"
        );
    }

    #[test]
    fn slot_kind_mask_filters_injection() {
        let mut spec = SlotFaultSpec::with_rate(5, 500);
        spec.kinds = SlotFaultKind::Hang.bit();
        let mut plan = SlotFaultPlan::from_spec(spec, 0).unwrap();
        let kinds: Vec<SlotFaultKind> = (0..400).filter_map(|_| plan.on_quantum()).collect();
        assert!(!kinds.is_empty());
        assert!(kinds.iter().all(|&k| k == SlotFaultKind::Hang));
        assert_eq!(plan.stats.hangs as usize, kinds.len());
        assert_eq!(plan.stats.crashes, 0);
    }
}
