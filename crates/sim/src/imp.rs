//! Indirect Memory Prefetcher (IMP) comparator — Yu et al., MICRO 2015.
//!
//! IMP detects `B[f(A[i])]` access patterns and prefetches the indirect
//! targets ahead of the demand stream. The paper evaluates it (§7.3,
//! Figure 15) "configured as recommended by the paper authors, including
//! the use of virtual addresses to prefetch across memory page boundaries".
//!
//! Model: a load site is classified *indirect* once a training number of
//! its dynamic instances have carried a data dependency on another load
//! (the index load). Once a site is trained, instances of it observed in
//! the core's fetch lookahead window are prefetched into L1 — giving the
//! prefetch a lead of `window` ops, the trace-driven equivalent of IMP's
//! index-ahead distance. Prefetches move real cachelines, so useless or
//! thrashing prefetches (the SpMSpM failure mode in §7.3) cost real
//! bandwidth and evictions.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::memsys::MemSys;
use crate::op::{Op, OpKind, Site};

/// Number of dependent-on-a-load instances before a site is classified
/// indirect (IMP's training threshold).
const TRAIN_THRESHOLD: u32 = 4;

/// IMP classification and prefetch state for one core.
#[derive(Debug, Default)]
pub struct Imp {
    /// Recent load op ids (to recognize load→load dependencies).
    recent_loads: HashSet<u64>,
    recent_order: VecDeque<u64>,
    training: HashMap<Site, u32>,
    indirect_sites: HashSet<Site>,
    /// Prefetches issued.
    pub issued: u64,
}

impl Imp {
    /// Creates a fresh IMP.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `site` has been classified as an indirect-load site.
    pub fn is_indirect(&self, site: Site) -> bool {
        self.indirect_sites.contains(&site)
    }

    fn note_load(&mut self, id: u64) {
        self.recent_loads.insert(id);
        self.recent_order.push_back(id);
        if self.recent_order.len() > 512 {
            if let Some(old) = self.recent_order.pop_front() {
                self.recent_loads.remove(&old);
            }
        }
    }

    /// Observes an op entering the lookahead window; issues a prefetch for
    /// trained indirect loads.
    pub fn observe(&mut self, op: &Op, core: usize, now: u64, mem: &mut MemSys) {
        let OpKind::Load { addr, .. } = op.kind else {
            if op.is_load() {
                self.note_load(op.id.0);
            }
            return;
        };
        let depends_on_load = op.deps.iter().any(|d| self.recent_loads.contains(&d.0));
        self.note_load(op.id.0);
        if depends_on_load {
            let count = self.training.entry(op.site).or_insert(0);
            *count += 1;
            if *count >= TRAIN_THRESHOLD {
                self.indirect_sites.insert(op.site);
            }
        }
        if self.indirect_sites.contains(&op.site) {
            mem.prefetch_into_l1(core, addr, now);
            self.issued += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, VecMachine};
    use crate::memsys::MemSysConfig;
    use crate::op::Deps;

    #[test]
    fn classifies_gather_sites_after_training() {
        let mut imp = Imp::new();
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut m = VecMachine::new();
        for i in 0..16u64 {
            let idx = m.load(Site(1), 0x1000 + i * 4, 4, Deps::NONE);
            m.load(
                Site(2),
                0x100_000 + (i * 7919 % 4096) * 8,
                8,
                Deps::from(idx),
            );
        }
        for op in m.take() {
            imp.observe(&op, 0, 0, &mut mem);
        }
        assert!(imp.is_indirect(Site(2)), "gather site must train");
        assert!(!imp.is_indirect(Site(1)), "index site must not train");
        assert!(imp.issued > 0);
    }

    #[test]
    fn direct_streams_never_train() {
        let mut imp = Imp::new();
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut m = VecMachine::new();
        for i in 0..64u64 {
            m.load(Site(3), 0x1000 + i * 8, 8, Deps::NONE);
        }
        for op in m.take() {
            imp.observe(&op, 0, 0, &mut mem);
        }
        assert!(!imp.is_indirect(Site(3)));
        assert_eq!(imp.issued, 0);
    }

    #[test]
    fn prefetched_lines_land_in_l1() {
        let mut imp = Imp::new();
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut m = VecMachine::new();
        // Train, then observe one more gather far away.
        for i in 0..8u64 {
            let idx = m.load(Site(1), 0x1000 + i * 4, 4, Deps::NONE);
            m.load(Site(2), 0x200_000 + i * 4096, 8, Deps::from(idx));
        }
        let target = 0x900_000u64;
        let idx = m.load(Site(1), 0x2000, 4, Deps::NONE);
        m.load(Site(2), target, 8, Deps::from(idx));
        for op in m.take() {
            imp.observe(&op, 0, 0, &mut mem);
        }
        assert!(mem.l1(0).contains(target), "prefetch must fill L1");
    }
}
