//! Cycle-level multicore simulator for the TMU reproduction.
//!
//! This crate replaces the gem5 infrastructure of the original paper with a
//! from-scratch, trace-driven timing model (the substitution is argued in
//! the repository's `DESIGN.md`). Kernels written against the [`Machine`]
//! trait emit a committed-path op stream with explicit data dependencies;
//! a [`System`] executes those streams on out-of-order core models
//! ([`Core`]) backed by a three-level cache hierarchy with finite MSHRs
//! ([`MemSys`]), a mesh NoC, and HBM2e channel models — the structures
//! whose contention produces the frontend/backend stall behaviour the
//! paper measures.
//!
//! Near-core engines (the TMU itself, in the `tmu` crate) attach through
//! the [`Accelerator`] trait: they issue traversal reads against the LLC
//! via [`MemSys::accel_read`], write outQ chunks into the host L2 via
//! [`MemSys::accel_write`], and hand the host core the callback ops to
//! compute.
//!
//! # Example
//!
//! ```
//! use tmu_sim::{configs, Deps, Machine, Site, System};
//!
//! let mut system = System::new(configs::neoverse_n1_system());
//! let stats = system.run(vec![|m: &mut tmu_sim::ChannelMachine| {
//!     // A tiny streaming kernel: load, multiply, accumulate.
//!     let mut acc = tmu_sim::OpId::NONE;
//!     for i in 0..1000u64 {
//!         let x = m.load(Site(1), 0x10_000 + i * 8, 8, Deps::NONE);
//!         acc = m.fp_op(2, Deps::on(&[x, acc]));
//!     }
//! }]);
//! assert!(stats.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod accel;
mod addr;
mod bpred;
mod cache;
pub mod configs;
mod core;
mod dram;
mod fault;
pub mod imp;
mod machine;
mod memsys;
mod noc;
mod op;
mod prefetch;
mod served;
mod stats;
mod system;

pub use accel::{Accelerator, NullAccelerator};
pub use addr::{line_of, AddressMap, Region, CACHELINE, PAGE};
pub use bpred::BranchPredictor;
pub use cache::{Cache, CacheConfig, MshrPool, Probe};
pub use core::{Core, CoreConfig, CoreStats, OpSource, SliceSource};
pub use dram::{Dram, DramConfig};
pub use fault::{
    FaultEvent, FaultKind, FaultPlan, FaultSpec, FaultStats, FaultTrigger, SlotFaultEvent,
    SlotFaultKind, SlotFaultPlan, SlotFaultSpec, SlotFaultStats,
};
pub use machine::{CountingMachine, Machine, VecMachine};
pub use memsys::{MemSys, MemSysConfig};
pub use noc::Mesh;
pub use op::{Deps, Op, OpId, OpKind, Site};
pub use prefetch::{BestOffsetPrefetcher, StridePrefetcher};
pub use served::{DriveOutcome, ServedCore, SlotStats};
pub use stats::{CacheLevelStats, MemStats, Roofline, RooflinePoint, RunStats};
pub use system::{
    ChannelMachine, SimError, SkipHint, System, SystemConfig, CYCLE_LIMIT, DEFAULT_WATCHDOG_CYCLES,
};
