//! The [`Machine`] abstraction: how kernels emit their dynamic op stream.
//!
//! Every workload in `tmu-kernels` is written once against this trait. The
//! same kernel code then runs in three modes:
//!
//! * [`CountingMachine`] — no timing; tallies op mix, FLOPs and touched
//!   bytes (used for arithmetic-intensity computation and fast tests);
//! * [`VecMachine`] — records the ops into a buffer (used by accelerator
//!   callback handlers and unit tests);
//! * `ChannelMachine` (in [`crate::system`]) — streams ops to a simulated
//!   core with bounded backpressure.

use crate::op::{Deps, Op, OpId, OpKind, Site};

/// Sink for the dynamic op stream of one simulated hardware thread.
///
/// Methods return the [`OpId`] of the emitted op so the kernel can express
/// data dependencies (e.g. the address of `b[idxs[p]]` depends on the load
/// of `idxs[p]`).
pub trait Machine {
    /// Emits an op with explicit kind/site/deps and returns its id.
    fn emit(&mut self, site: Site, kind: OpKind, deps: Deps) -> OpId;

    /// Scalar load of `bytes` at `addr`.
    fn load(&mut self, site: Site, addr: u64, bytes: u32, deps: Deps) -> OpId {
        self.emit(site, OpKind::Load { addr, bytes }, deps)
    }

    /// Contiguous vector load.
    fn vec_load(&mut self, site: Site, addr: u64, bytes: u32, deps: Deps) -> OpId {
        self.emit(site, OpKind::VecLoad { addr, bytes }, deps)
    }

    /// Store of `bytes` at `addr`.
    fn store(&mut self, site: Site, addr: u64, bytes: u32, deps: Deps) -> OpId {
        self.emit(site, OpKind::Store { addr, bytes }, deps)
    }

    /// Scalar integer/address op.
    fn int_op(&mut self, deps: Deps) -> OpId {
        self.emit(Site(0), OpKind::IntAlu, deps)
    }

    /// Scalar floating-point op performing `flops` FLOPs.
    fn fp_op(&mut self, flops: u32, deps: Deps) -> OpId {
        self.emit(Site(0), OpKind::FpAlu { flops }, deps)
    }

    /// SIMD op performing `flops` FLOPs across its lanes.
    fn vec_op(&mut self, flops: u32, deps: Deps) -> OpId {
        self.emit(Site(0), OpKind::VecAlu { flops }, deps)
    }

    /// Conditional branch at `site` with committed direction `taken`.
    fn branch(&mut self, site: Site, taken: bool, deps: Deps) -> OpId {
        self.emit(site, OpKind::Branch { taken }, deps)
    }
}

/// Functional-only machine: counts the op mix without any timing.
#[derive(Debug, Clone, Default)]
pub struct CountingMachine {
    next: u64,
    /// Total ops emitted.
    pub ops: u64,
    /// Scalar + vector loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches.
    pub branches: u64,
    /// Total FLOPs.
    pub flops: u64,
    /// Bytes touched by loads and stores (not deduplicated).
    pub bytes_accessed: u64,
}

impl CountingMachine {
    /// Creates a fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Machine for CountingMachine {
    fn emit(&mut self, _site: Site, kind: OpKind, _deps: Deps) -> OpId {
        self.next += 1;
        self.ops += 1;
        match kind {
            OpKind::Load { bytes, .. } | OpKind::VecLoad { bytes, .. } => {
                self.loads += 1;
                self.bytes_accessed += bytes as u64;
            }
            OpKind::Store { bytes, .. } => {
                self.stores += 1;
                self.bytes_accessed += bytes as u64;
            }
            OpKind::Branch { .. } => self.branches += 1,
            OpKind::FpAlu { flops } | OpKind::VecAlu { flops } => self.flops += flops as u64,
            OpKind::IntAlu | OpKind::ChunkEnd { .. } => {}
        }
        OpId(self.next)
    }
}

/// Machine that records ops into a buffer.
///
/// Used by accelerator callback handlers (each outQ entry expands into a
/// short burst of host ops) and by tests that assert on emitted streams.
#[derive(Debug, Clone, Default)]
pub struct VecMachine {
    next: u64,
    /// Earliest cycle at which recorded ops become visible to the core.
    pub visible_at: u64,
    /// Recorded op stream.
    pub ops: Vec<Op>,
}

impl VecMachine {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder whose ops start numbering after `last`, so the
    /// stream can be appended to an existing one.
    pub fn continuing_from(last: OpId) -> Self {
        Self {
            next: last.0,
            visible_at: 0,
            ops: Vec::new(),
        }
    }

    /// Id of the most recently emitted op.
    pub fn last_id(&self) -> OpId {
        OpId(self.next)
    }

    /// Takes the recorded ops, leaving the recorder empty but keeping the
    /// sequence counter (so subsequent ops continue the stream).
    pub fn take(&mut self) -> Vec<Op> {
        std::mem::take(&mut self.ops)
    }
}

impl Machine for VecMachine {
    fn emit(&mut self, site: Site, kind: OpKind, deps: Deps) -> OpId {
        self.next += 1;
        let id = OpId(self.next);
        self.ops.push(Op {
            id,
            site,
            kind,
            deps,
            visible_at: self.visible_at,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel<M: Machine>(m: &mut M) {
        let a = m.load(Site(1), 0x1000, 4, Deps::NONE);
        let b = m.load(Site(2), 0x2000, 8, Deps::from(a));
        let s = m.fp_op(2, Deps::on(&[a, b]));
        m.store(Site(3), 0x3000, 8, Deps::from(s));
        m.branch(Site(4), true, Deps::NONE);
    }

    #[test]
    fn counting_machine_tallies() {
        let mut m = CountingMachine::new();
        tiny_kernel(&mut m);
        assert_eq!(m.ops, 5);
        assert_eq!(m.loads, 2);
        assert_eq!(m.stores, 1);
        assert_eq!(m.branches, 1);
        assert_eq!(m.flops, 2);
        assert_eq!(m.bytes_accessed, 4 + 8 + 8);
    }

    #[test]
    fn vec_machine_preserves_program_order_and_deps() {
        let mut m = VecMachine::new();
        tiny_kernel(&mut m);
        assert_eq!(m.ops.len(), 5);
        assert_eq!(m.ops[0].id, OpId(1));
        assert_eq!(m.ops[1].deps.iter().collect::<Vec<_>>(), vec![OpId(1)]);
        assert_eq!(m.ops[4].id, OpId(5));
    }

    #[test]
    fn vec_machine_take_continues_numbering() {
        let mut m = VecMachine::new();
        m.int_op(Deps::NONE);
        let first = m.take();
        assert_eq!(first.len(), 1);
        let id = m.int_op(Deps::NONE);
        assert_eq!(id, OpId(2));
        assert_eq!(m.ops.len(), 1);
    }

    #[test]
    fn continuing_from_offsets_ids() {
        let mut m = VecMachine::continuing_from(OpId(10));
        let id = m.int_op(Deps::NONE);
        assert_eq!(id, OpId(11));
    }
}
