//! The assembled memory hierarchy.
//!
//! Per-core private L1D and L2 caches, a shared address-interleaved
//! mostly-exclusive LLC (8 slices in Table 5), a 2-D mesh between cores and
//! slices, and the HBM channel model. Timing is computed per request along
//! the miss path; cache state is updated eagerly while in-flight records
//! preserve arrival times (see [`crate::cache::Cache::probe`]).
//!
//! The TMU (and any other near-core engine) uses the dedicated
//! [`MemSys::accel_read`]/[`MemSys::accel_write`] ports: traversal reads go
//! straight to the LLC with the engine's own 128-entry request pool
//! (§5.6 — "by reading from the LLC we take advantage of the larger MSHR
//! count"), and outQ writes land in the host core's private L2.

use crate::addr::{line_of, CACHELINE};
use crate::cache::{Cache, CacheConfig, MshrPool, Probe};
use crate::dram::{Dram, DramConfig};
use crate::noc::Mesh;
use crate::op::Site;
use crate::prefetch::{BestOffsetPrefetcher, StridePrefetcher};
use crate::stats::MemStats;

/// Configuration of the full memory system.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemSysConfig {
    /// Number of cores (each gets a private L1 and L2).
    pub cores: usize,
    /// Private L1D configuration.
    pub l1: CacheConfig,
    /// Private L2 configuration.
    pub l2: CacheConfig,
    /// One LLC slice's configuration.
    pub llc_slice: CacheConfig,
    /// Number of LLC slices.
    pub llc_slices: usize,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// L1 stride prefetcher degree (0 disables it).
    pub l1_stride_degree: usize,
    /// Enable the L2 best-offset prefetcher.
    pub l2_best_offset: bool,
    /// Outstanding-request pool size for an attached accelerator.
    pub accel_outstanding: usize,
}

impl MemSysConfig {
    /// The Table 5 hierarchy for `cores` cores.
    pub fn table5(cores: usize) -> Self {
        Self {
            cores,
            l1: CacheConfig {
                size_bytes: 64 << 10,
                ways: 4,
                latency: 2,
                mshrs: 32,
            },
            l2: CacheConfig {
                size_bytes: 512 << 10,
                ways: 8,
                latency: 8,
                mshrs: 64,
            },
            llc_slice: CacheConfig {
                size_bytes: 1 << 20,
                ways: 16,
                latency: 12,
                mshrs: 128,
            },
            llc_slices: 8,
            dram: DramConfig::hbm2e_4ch(),
            l1_stride_degree: 2,
            l2_best_offset: true,
            accel_outstanding: 128,
        }
    }
}

/// The assembled hierarchy.
#[derive(Debug)]
pub struct MemSys {
    cfg: MemSysConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Vec<Cache>,
    l1_pf: Vec<StridePrefetcher>,
    l2_pf: Vec<BestOffsetPrefetcher>,
    accel_pool: Vec<MshrPool>,
    mesh: Mesh,
    dram: Dram,
    pf_scratch: Vec<u64>,
    /// Demand loads served (all cores).
    pub demand_loads: u64,
    /// outQ lines written by accelerators into L2s.
    pub accel_outq_lines: u64,
    /// Traversal reads issued by accelerators (all cores) — part of the
    /// watchdog's forward-progress signature.
    pub accel_reads: u64,
}

impl MemSys {
    /// Builds the hierarchy from `cfg`.
    pub fn new(cfg: MemSysConfig) -> Self {
        Self {
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect(),
            llc: (0..cfg.llc_slices)
                .map(|_| Cache::new(cfg.llc_slice))
                .collect(),
            l1_pf: (0..cfg.cores)
                .map(|_| StridePrefetcher::new(cfg.l1_stride_degree))
                .collect(),
            l2_pf: (0..cfg.cores)
                .map(|_| BestOffsetPrefetcher::new())
                .collect(),
            accel_pool: (0..cfg.cores)
                .map(|_| MshrPool::new(cfg.accel_outstanding))
                .collect(),
            mesh: Mesh::mesh4x4(cfg.cores, cfg.llc_slices),
            dram: Dram::new(cfg.dram),
            pf_scratch: Vec::new(),
            cfg,
            demand_loads: 0,
            accel_outq_lines: 0,
            accel_reads: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemSysConfig {
        &self.cfg
    }

    /// Registers every cache level and the DRAM model as components of the
    /// installed tracer and attaches their trace ids, so subsequent probes
    /// and accesses emit events. No-op when no tracer is installed.
    #[cfg(feature = "trace")]
    pub fn register_trace(&mut self) {
        tmu_trace::with(|t| {
            for (i, c) in self.l1.iter_mut().enumerate() {
                c.set_trace(t.component(&format!("system.core{i}.l1")));
            }
            for (i, c) in self.l2.iter_mut().enumerate() {
                c.set_trace(t.component(&format!("system.core{i}.l2")));
            }
            for (s, c) in self.llc.iter_mut().enumerate() {
                c.set_trace(t.component(&format!("system.llc{s}")));
            }
            self.dram.set_trace(t.component("system.dram"));
        });
    }

    /// The mesh NoC (latency and telemetry access).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// DRAM statistics.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// L1 of `core` (statistics access).
    pub fn l1(&self, core: usize) -> &Cache {
        &self.l1[core]
    }

    /// L2 of `core` (statistics access).
    pub fn l2(&self, core: usize) -> &Cache {
        &self.l2[core]
    }

    /// LLC slice `s` (statistics access).
    pub fn llc(&self, s: usize) -> &Cache {
        &self.llc[s]
    }

    fn slice_of(&self, line: u64) -> usize {
        ((line / CACHELINE) % self.cfg.llc_slices as u64) as usize
    }

    /// Serves a demand load; returns the completion cycle of the last
    /// touched line.
    pub fn read(&mut self, core: usize, site: Site, addr: u64, bytes: u32, t: u64) -> u64 {
        self.demand_loads += 1;
        let first = line_of(addr);
        let last = line_of(addr + bytes.max(1) as u64 - 1);
        let mut done = 0;
        let mut line = first;
        while line <= last {
            done = done.max(self.read_line(core, line, t));
            line += CACHELINE;
        }
        // Train the L1 stride prefetcher on the demand stream.
        if self.cfg.l1_stride_degree > 0 {
            let mut targets = std::mem::take(&mut self.pf_scratch);
            targets.clear();
            self.l1_pf[core].observe(site, addr, &mut targets);
            for target in targets.drain(..) {
                self.prefetch_into_l1(core, target, t);
            }
            self.pf_scratch = targets;
        }
        done
    }

    fn read_line(&mut self, core: usize, line: u64, t: u64) -> u64 {
        let l1_lat = self.cfg.l1.latency;
        match self.l1[core].probe(line, t) {
            Probe::Hit => t + l1_lat,
            Probe::InFlight(done) => done.max(t + l1_lat),
            Probe::Miss => {
                let (slot, start) = self.l1[core].mshrs.acquire(t);
                let done = self.read_l2(core, line, start + l1_lat, false);
                self.l1[core].mshrs.hold(slot, done);
                self.l1[core].mark_inflight(line, done);
                self.fill_l1(core, line, false);
                self.l1[core].sweep_inflight(t);
                done
            }
        }
    }

    /// L2 lookup on the L1-miss path. `for_prefetch` suppresses the
    /// best-offset training (prefetches must not train the prefetcher).
    fn read_l2(&mut self, core: usize, line: u64, t: u64, for_prefetch: bool) -> u64 {
        let l2_lat = self.cfg.l2.latency;
        if self.cfg.l2_best_offset && !for_prefetch {
            let mut targets = std::mem::take(&mut self.pf_scratch);
            targets.clear();
            self.l2_pf[core].observe(line, &mut targets);
            for target in targets.drain(..) {
                self.prefetch_into_l2(core, target, t);
            }
            self.pf_scratch = targets;
        }
        match self.l2[core].probe(line, t) {
            Probe::Hit => t + l2_lat,
            Probe::InFlight(done) => done.max(t + l2_lat),
            Probe::Miss => {
                let (slot, start) = self.l2[core].mshrs.acquire(t);
                let done = self.read_llc(core, line, start + l2_lat);
                self.l2[core].mshrs.hold(slot, done);
                self.l2[core].mark_inflight(line, done);
                self.fill_l2(core, line, false);
                self.l2[core].sweep_inflight(t);
                done
            }
        }
    }

    /// LLC lookup on the L2-miss path. The LLC is mostly exclusive: a hit
    /// moves the line up (invalidate here, fill in L2); a miss fetches from
    /// DRAM directly into L2, bypassing LLC allocation.
    fn read_llc(&mut self, core: usize, line: u64, t: u64) -> u64 {
        let slice = self.slice_of(line);
        let noc = self.mesh.round_trip(core, slice);
        let llc_lat = self.cfg.llc_slice.latency;
        let arrive = t + noc / 2;
        match self.llc[slice].probe(line, arrive) {
            Probe::Hit => {
                self.llc[slice].invalidate(line);
                t + noc + llc_lat
            }
            Probe::InFlight(done) => done.max(t + noc + llc_lat),
            Probe::Miss => {
                let (slot, start) = self.llc[slice].mshrs.acquire(arrive);
                let done = self.dram.access(line, start + llc_lat, false) + noc / 2;
                self.llc[slice].mshrs.hold(slot, done);
                self.llc[slice].mark_inflight(line, done);
                self.llc[slice].sweep_inflight(arrive);
                done
            }
        }
    }

    /// Inserts into L1, spilling the victim to L2.
    fn fill_l1(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some((victim, was_dirty)) = self.l1[core].fill(line, dirty) {
            // Victims (clean or dirty) land in L2 (write-back hierarchy).
            self.fill_l2(core, victim, was_dirty);
        }
    }

    /// Inserts into L2, spilling the victim to the LLC (mostly exclusive).
    fn fill_l2(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some((victim, was_dirty)) = self.l2[core].fill(line, dirty) {
            self.fill_llc(victim, was_dirty);
        }
    }

    /// Inserts into the owning LLC slice, writing dirty victims to DRAM.
    fn fill_llc(&mut self, line: u64, dirty: bool) {
        let slice = self.slice_of(line);
        if let Some((victim, was_dirty)) = self.llc[slice].fill(line, dirty) {
            if was_dirty {
                // Writeback consumes DRAM bandwidth; nobody waits on it.
                self.dram.access(victim, 0, true);
            }
        }
    }

    /// Background prefetch into L1 (stride prefetcher / IMP). Does not
    /// consume core-visible MSHRs but moves real lines (bandwidth + state).
    pub fn prefetch_into_l1(&mut self, core: usize, addr: u64, t: u64) {
        let line = line_of(addr);
        if self.l1[core].contains(line) {
            return;
        }
        let done = self.read_l2(core, line, t + self.cfg.l1.latency, true);
        self.l1[core].mark_inflight(line, done);
        self.fill_l1(core, line, false);
    }

    /// Background prefetch into L2 (best-offset prefetcher).
    fn prefetch_into_l2(&mut self, core: usize, addr: u64, t: u64) {
        let line = line_of(addr);
        if self.l2[core].contains(line) {
            return;
        }
        let done = self.read_llc(core, line, t + self.cfg.l2.latency);
        self.l2[core].mark_inflight(line, done);
        self.fill_l2(core, line, false);
    }

    /// Serves a store. The returned cycle is when the line is owned
    /// (read-for-ownership complete) — the store-queue entry is held until
    /// then, while the core retires the store through its store buffer.
    pub fn write(&mut self, core: usize, addr: u64, bytes: u32, t: u64) -> u64 {
        let first = line_of(addr);
        let last = line_of(addr + bytes.max(1) as u64 - 1);
        let mut done = t + 1;
        let mut line = first;
        while line <= last {
            let owned = match self.l1[core].probe(line, t) {
                Probe::Hit => t + self.cfg.l1.latency,
                Probe::InFlight(d) => d,
                Probe::Miss => {
                    // Write-allocate: RFO through the regular miss path.
                    let (slot, start) = self.l1[core].mshrs.acquire(t);
                    let d = self.read_l2(core, line, start + self.cfg.l1.latency, false);
                    self.l1[core].mshrs.hold(slot, d);
                    self.l1[core].mark_inflight(line, d);
                    self.fill_l1(core, line, false);
                    d
                }
            };
            self.l1[core].set_dirty(line);
            done = done.max(owned);
            line += CACHELINE;
        }
        done
    }

    /// Accelerator traversal read: straight to the LLC with the engine's
    /// own outstanding-request pool (§5.6). Fills allocate in the LLC so
    /// input reuse is captured there.
    pub fn accel_read(&mut self, core: usize, addr: u64, t: u64) -> u64 {
        self.accel_reads += 1;
        let line = line_of(addr);
        let slice = self.slice_of(line);
        let noc = self.mesh.round_trip(core, slice);
        let llc_lat = self.cfg.llc_slice.latency;
        let (slot, start) = self.accel_pool[core].acquire(t);
        let arrive = start + noc / 2;
        let done = match self.llc[slice].probe(line, arrive) {
            Probe::Hit => start + noc + llc_lat,
            Probe::InFlight(d) => d.max(start + noc + llc_lat),
            Probe::Miss => {
                let d = self.dram.access(line, arrive + llc_lat, false) + noc / 2;
                self.llc[slice].mark_inflight(line, d);
                self.fill_llc(line, false);
                self.llc[slice].sweep_inflight(arrive);
                d
            }
        };
        self.accel_pool[core].hold(slot, done);
        done
    }

    /// Accelerator outQ write into the host core's private L2. Returns the
    /// cycle at which the written line is visible to the core.
    pub fn accel_write(&mut self, core: usize, addr: u64, bytes: u32, t: u64) -> u64 {
        let first = line_of(addr);
        let last = line_of(addr + bytes.max(1) as u64 - 1);
        let mut line = first;
        while line <= last {
            self.accel_outq_lines += 1;
            self.fill_l2(core, line, true);
            line += CACHELINE;
        }
        t + self.cfg.l2.latency
    }

    /// Number of outstanding accelerator requests for `core` at time `t`.
    pub fn accel_outstanding(&self, core: usize, t: u64) -> usize {
        self.accel_pool[core].busy_at(t)
    }

    /// Aggregates the hierarchy's counters (summed over cache instances)
    /// into one [`MemStats`] record.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for c in self.l1.iter() {
            s.l1.absorb(c.hits, c.misses, c.merged, c.writebacks);
        }
        for c in self.l2.iter() {
            s.l2.absorb(c.hits, c.misses, c.merged, c.writebacks);
        }
        for c in self.llc.iter() {
            s.llc.absorb(c.hits, c.misses, c.merged, c.writebacks);
        }
        s.dram_lines_read = self.dram.lines_read;
        s.dram_lines_written = self.dram.lines_written;
        s.dram_row_hits = self.dram.row_hits;
        s.dram_row_misses = self.dram.row_misses;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemSys {
        MemSys::new(MemSysConfig::table5(2))
    }

    #[test]
    fn first_touch_goes_to_dram_then_hits() {
        let mut m = small();
        let cold = m.read(0, Site(1), 0x10_000, 8, 0);
        assert!(cold > 60, "cold miss must pay DRAM latency, got {cold}");
        let warm = m.read(0, Site(1), 0x10_000, 8, cold + 10) - (cold + 10);
        assert_eq!(warm, m.config().l1.latency, "second access is an L1 hit");
    }

    #[test]
    fn llc_is_mostly_exclusive() {
        let mut m = small();
        let addr = 0x40_000;
        // Load on core 0, let the line age out of L1+L2 into the LLC by
        // streaming conflicting lines through (same L1 set every 64KiB/4…).
        m.read(0, Site(1), addr, 8, 0);
        // Fill L1 and L2 with enough conflicting lines to evict `addr`.
        for i in 1..20_000u64 {
            m.read(0, Site(1), addr + i * CACHELINE, 8, i * 10);
        }
        let slice = m.slice_of(line_of(addr));
        assert!(
            m.llc[slice].contains(addr),
            "evicted line must land in the LLC"
        );
        // Re-reading moves it up and invalidates the LLC copy.
        m.read(0, Site(1), addr, 8, 1_000_000);
        assert!(
            !m.llc[slice].contains(addr),
            "LLC hit must move the line up"
        );
    }

    #[test]
    fn mshr_pressure_delays_misses() {
        // 2-MSHR L1: the third concurrent miss must wait.
        let mut cfg = MemSysConfig::table5(1);
        cfg.l1.mshrs = 2;
        cfg.l1_stride_degree = 0;
        cfg.l2_best_offset = false;
        let mut m = MemSys::new(cfg);
        let t0 = m.read(0, Site(1), 0x100_000, 8, 0);
        let t1 = m.read(0, Site(2), 0x200_000, 8, 0);
        let t2 = m.read(0, Site(3), 0x300_000, 8, 0);
        assert!(
            t2 >= t0.min(t1),
            "third miss cannot finish before a slot frees"
        );
        assert!(m.l1[0].mshrs.full_events >= 1);
    }

    #[test]
    fn stores_mark_lines_dirty_and_writeback() {
        let mut m = small();
        m.write(0, 0x1000, 8, 0);
        assert!(m.l1[0].contains(0x1000));
        // Stream enough stores to force dirty evictions all the way down.
        for i in 1..200_000u64 {
            m.write(0, 0x1000 + i * CACHELINE, 8, i);
        }
        assert!(
            m.dram().lines_written > 0,
            "dirty evictions must reach DRAM"
        );
    }

    #[test]
    fn accel_reads_bypass_private_caches() {
        let mut m = small();
        let addr = 0x80_000;
        let done = m.accel_read(0, addr, 0);
        assert!(done > 60, "cold accel read pays DRAM latency");
        assert!(!m.l1[0].contains(addr), "accel reads must not pollute L1");
        assert!(!m.l2[0].contains(addr), "accel reads must not pollute L2");
        let slice = m.slice_of(line_of(addr));
        assert!(m.llc[slice].contains(addr), "accel fills allocate in LLC");
        // Second read is an LLC hit: cheaper than DRAM.
        let warm = m.accel_read(0, addr, 1000) - 1000;
        assert!(warm < 40, "LLC hit must be cheap, got {warm}");
    }

    #[test]
    fn accel_write_lands_in_l2() {
        let mut m = small();
        m.accel_write(0, 0x9000, 64, 0);
        assert!(m.l2[0].contains(0x9000));
        assert_eq!(m.accel_outq_lines, 1);
        // Core read of the outQ line is an L2 hit.
        let t = m.read(0, Site(4), 0x9000, 8, 100) - 100;
        assert!(
            t <= m.config().l1.latency + m.config().l2.latency,
            "outQ read must hit in L2, got {t}"
        );
    }

    #[test]
    fn accel_pool_limits_outstanding() {
        let mut cfg = MemSysConfig::table5(1);
        cfg.accel_outstanding = 4;
        let mut m = MemSys::new(cfg);
        let mut last = 0;
        for i in 0..8u64 {
            last = m.accel_read(0, 0x100_000 + i * 4096 * 64, 0).max(last);
        }
        assert!(m.accel_outstanding(0, 1) <= 4);
        assert!(last > 100, "pool exhaustion must serialize requests");
    }

    #[test]
    fn sequential_stream_trains_stride_prefetcher() {
        // Total serialized latency of a sequential element stream must be
        // lower with the stride prefetcher than without it.
        let run = |stride_degree: usize| {
            let mut cfg = MemSysConfig::table5(1);
            cfg.l1_stride_degree = stride_degree;
            cfg.l2_best_offset = false;
            let mut m = MemSys::new(cfg);
            let mut t = 0u64;
            for i in 0..512u64 {
                t = m.read(0, Site(7), 0x500_000 + i * 8, 8, t) + 1;
            }
            t
        };
        let without = run(0);
        let with = run(2);
        assert!(
            with * 10 < without * 9,
            "prefetcher must help a sequential stream ({with} vs {without})"
        );
    }
}
