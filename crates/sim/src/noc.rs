//! Mesh network-on-chip latency model.
//!
//! The simulated system (Table 5) uses a 4×4 2-D mesh with 1-cycle routers
//! and 1-cycle links, AMBA-5-CHI style. Cores and LLC slices are placed on
//! fixed nodes; a request from core *c* to slice *s* pays
//! `2 × (router + link) × hops` (request + response). Link contention is
//! not modeled: at 2.4 GHz with 32 B flits a single mesh link sustains
//! ~76 GB/s, far above the 150 GB/s aggregate DRAM ceiling spread over 16
//! links, so the mesh is never the bottleneck for these workloads.

/// 2-D mesh NoC latency calculator.
#[derive(Debug, Clone)]
pub struct Mesh {
    width: usize,
    router_cycles: u64,
    link_cycles: u64,
    core_nodes: Vec<(usize, usize)>,
    slice_nodes: Vec<(usize, usize)>,
    // Utilization accounting (trace builds only). `Cell` because latency
    // queries take `&self`; the mesh is owned by one simulation thread.
    #[cfg(feature = "trace")]
    traversals: std::cell::Cell<u64>,
    #[cfg(feature = "trace")]
    hop_cycles: std::cell::Cell<u64>,
}

impl Mesh {
    /// The Table 5 mesh: 4×4, 1-cycle routers, 1-cycle links, 8 cores on
    /// the outer columns and 8 LLC slices on the inner columns.
    pub fn mesh4x4(cores: usize, slices: usize) -> Self {
        let core_cols = [0usize, 3];
        let slice_cols = [1usize, 2];
        let core_nodes = (0..cores)
            .map(|i| (core_cols[i % 2], (i / 2) % 4))
            .collect();
        let slice_nodes = (0..slices)
            .map(|i| (slice_cols[i % 2], (i / 2) % 4))
            .collect();
        Self {
            width: 4,
            router_cycles: 1,
            link_cycles: 1,
            core_nodes,
            slice_nodes,
            #[cfg(feature = "trace")]
            traversals: std::cell::Cell::new(0),
            #[cfg(feature = "trace")]
            hop_cycles: std::cell::Cell::new(0),
        }
    }

    /// Accumulated `(traversals, hop_cycles)` since construction: how many
    /// round trips crossed the mesh and the total per-hop cycles they paid
    /// (link-utilization telemetry; the ratio is the mean traversal cost).
    #[cfg(feature = "trace")]
    pub fn traffic(&self) -> (u64, u64) {
        (self.traversals.get(), self.hop_cycles.get())
    }

    /// Mesh width (nodes per side).
    pub fn width(&self) -> usize {
        self.width
    }

    /// One-way hop count between a core and an LLC slice.
    pub fn hops(&self, core: usize, slice: usize) -> u64 {
        let (cx, cy) = self.core_nodes[core % self.core_nodes.len()];
        let (sx, sy) = self.slice_nodes[slice % self.slice_nodes.len()];
        (cx.abs_diff(sx) + cy.abs_diff(sy)) as u64
    }

    /// Round-trip latency (request + response) between a core and a slice.
    pub fn round_trip(&self, core: usize, slice: usize) -> u64 {
        let per_hop = self.router_cycles + self.link_cycles;
        let cycles = 2 * per_hop * self.hops(core, slice).max(1);
        #[cfg(feature = "trace")]
        {
            self.traversals.set(self.traversals.get() + 1);
            self.hop_cycles.set(self.hop_cycles.get() + cycles);
        }
        cycles
    }

    /// Average round-trip latency from `core` over all slices (used when a
    /// component is modeled without a concrete slice target).
    pub fn avg_round_trip(&self, core: usize) -> u64 {
        let n = self.slice_nodes.len() as u64;
        let total: u64 = (0..self.slice_nodes.len())
            .map(|s| self.round_trip(core, s))
            .sum();
        total / n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_fit_the_mesh() {
        let mesh = Mesh::mesh4x4(8, 8);
        assert_eq!(mesh.width(), 4);
        for c in 0..8 {
            for s in 0..8 {
                assert!(mesh.hops(c, s) <= 6);
            }
        }
    }

    #[test]
    fn round_trip_scales_with_distance() {
        let mesh = Mesh::mesh4x4(8, 8);
        // Core 0 at (0,0); slice 0 at (1,0) → 1 hop; slice 7 at (2,3) → 5.
        assert!(mesh.round_trip(0, 0) < mesh.round_trip(0, 7));
        assert_eq!(mesh.round_trip(0, 0), 4); // 2 × (1+1) × 1
    }

    #[test]
    fn avg_round_trip_is_bounded() {
        let mesh = Mesh::mesh4x4(8, 8);
        for c in 0..8 {
            let avg = mesh.avg_round_trip(c);
            assert!((4..=24).contains(&avg), "core {c}: avg {avg}");
        }
    }
}
