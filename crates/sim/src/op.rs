//! Dynamic operation stream format.
//!
//! Kernels written against the [`crate::Machine`] trait emit a stream of
//! [`Op`]s — the simulator's equivalent of a committed-path dynamic
//! instruction trace. Each op carries a static *site* (a pseudo program
//! counter used by the branch predictor and prefetchers), explicit data
//! dependencies on earlier ops, and kind-specific payload (address, taken
//! direction, FLOP count).

/// Identifier of a dynamic operation within one core's stream.
///
/// Sequence numbers are assigned in program order starting from 1; `OpId(0)`
/// is reserved as "no dependency".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpId(pub u64);

impl OpId {
    /// The "no dependency" sentinel.
    pub const NONE: OpId = OpId(0);

    /// Whether this is a real op reference.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// A static code site: a pseudo program counter.
///
/// Kernels give each distinct load/branch in their source a stable site so
/// the branch predictor and the stride/indirect prefetchers can learn
/// per-site behaviour, like real hardware keys its tables by PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Site(pub u16);

/// Up to three explicit data dependencies of an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deps {
    ids: [OpId; 3],
}

impl Deps {
    /// No dependencies.
    pub const NONE: Deps = Deps {
        ids: [OpId::NONE; 3],
    };

    /// Dependencies on the given ops (at most 3; extra entries must be
    /// folded by the caller through an intermediate op).
    ///
    /// # Panics
    ///
    /// Panics if more than three ids are supplied.
    pub fn on(ids: &[OpId]) -> Deps {
        assert!(ids.len() <= 3, "at most 3 explicit deps per op");
        let mut d = Deps::NONE;
        for (slot, &id) in d.ids.iter_mut().zip(ids) {
            *slot = id;
        }
        d
    }

    /// Iterates the real (non-sentinel) dependencies.
    pub fn iter(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ids.iter().copied().filter(|d| d.is_some())
    }
}

impl From<OpId> for Deps {
    fn from(id: OpId) -> Deps {
        Deps::on(&[id])
    }
}

/// The kind of a dynamic operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// Scalar integer/address arithmetic (1-cycle latency).
    IntAlu,
    /// Scalar floating-point op; `flops` counted for roofline analysis.
    FpAlu {
        /// FLOPs performed.
        flops: u32,
    },
    /// SIMD arithmetic op (multiply, add, FMA, reduce...).
    VecAlu {
        /// FLOPs performed across all lanes.
        flops: u32,
    },
    /// Scalar load of `bytes` from `addr`.
    Load {
        /// Virtual address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// Contiguous vector load (one cacheline-friendly access).
    VecLoad {
        /// Virtual address of the first element.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// Scalar or element store.
    Store {
        /// Virtual address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// Conditional branch with its committed direction.
    Branch {
        /// Actual (committed-path) direction.
        taken: bool,
    },
    /// Zero-cost marker: the last op generated from outQ chunk `chunk`.
    ///
    /// When it commits, the host core acknowledges the chunk to its
    /// attached accelerator (freeing one of the double buffers).
    ChunkEnd {
        /// Chunk sequence number.
        chunk: u32,
    },
}

/// A dynamic operation: one element of a core's committed-path trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Program-order sequence number (1-based).
    pub id: OpId,
    /// Static code site.
    pub site: Site,
    /// Kind and payload.
    pub kind: OpKind,
    /// Explicit data dependencies.
    pub deps: Deps,
    /// Earliest cycle at which the front end may see this op
    /// (0 for ordinary kernel ops; set by accelerators to the cycle their
    /// producing outQ chunk became visible to the core).
    pub visible_at: u64,
}

impl Op {
    /// Whether the op occupies a load-queue entry.
    pub fn is_load(&self) -> bool {
        matches!(self.kind, OpKind::Load { .. } | OpKind::VecLoad { .. })
    }

    /// Whether the op occupies a store-queue entry.
    pub fn is_store(&self) -> bool {
        matches!(self.kind, OpKind::Store { .. })
    }

    /// FLOPs this op contributes to the roofline numerator.
    pub fn flops(&self) -> u64 {
        match self.kind {
            OpKind::FpAlu { flops } | OpKind::VecAlu { flops } => flops as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_iteration_skips_sentinels() {
        let d = Deps::on(&[OpId(3), OpId::NONE, OpId(7)]);
        let real: Vec<_> = d.iter().collect();
        assert_eq!(real, vec![OpId(3), OpId(7)]);
        assert_eq!(Deps::NONE.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn deps_capacity_enforced() {
        Deps::on(&[OpId(1), OpId(2), OpId(3), OpId(4)]);
    }

    #[test]
    fn op_classification() {
        let op = Op {
            id: OpId(1),
            site: Site(0),
            kind: OpKind::Load { addr: 64, bytes: 8 },
            deps: Deps::NONE,
            visible_at: 0,
        };
        assert!(op.is_load());
        assert!(!op.is_store());
        assert_eq!(op.flops(), 0);
        let v = Op {
            kind: OpKind::VecAlu { flops: 16 },
            ..op
        };
        assert_eq!(v.flops(), 16);
    }
}
