//! Hardware prefetcher models.
//!
//! The Table 5 system has a stride prefetcher (degree 2) at L1D and a
//! Best-Offset prefetcher at L2. Both are modeled behaviourally: given the
//! demand access stream they emit candidate prefetch addresses, which the
//! memory system then fetches through the regular miss path (consuming
//! bandwidth but not core-visible MSHRs).

use std::collections::HashMap;

use crate::addr::CACHELINE;
use crate::op::Site;

/// Per-site stride prefetcher (L1D in Table 5, degree 2).
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    degree: usize,
    table: HashMap<Site, StrideEntry>,
    /// Prefetches issued.
    pub issued: u64,
}

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher issuing `degree` prefetches ahead.
    pub fn new(degree: usize) -> Self {
        Self {
            degree,
            table: HashMap::new(),
            issued: 0,
        }
    }

    /// Observes a demand access and returns addresses to prefetch.
    pub fn observe(&mut self, site: Site, addr: u64, out: &mut Vec<u64>) {
        let entry = self.table.entry(site).or_insert(StrideEntry {
            last_addr: addr,
            stride: 0,
            confidence: 0,
        });
        let stride = addr as i64 - entry.last_addr as i64;
        if stride != 0 && stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_addr = addr;
        if entry.confidence >= 2 {
            // Small element strides are promoted to line granularity so the
            // prefetch actually runs ahead of the consuming stream.
            let step = if entry.stride.unsigned_abs() < CACHELINE {
                entry.stride.signum() * CACHELINE as i64
            } else {
                entry.stride
            };
            for d in 1..=self.degree {
                let target = addr as i64 + step * d as i64;
                if target > 0 {
                    out.push(target as u64);
                    self.issued += 1;
                }
            }
        }
    }
}

/// Simplified Best-Offset prefetcher (L2 in Table 5).
///
/// Scores a fixed candidate-offset list against a small history of recent
/// line addresses; after each learning round the best-scoring offset is
/// used to prefetch `line + offset` on every L2 demand access.
#[derive(Debug, Clone)]
pub struct BestOffsetPrefetcher {
    offsets: Vec<i64>,
    scores: Vec<u32>,
    recent: Vec<u64>,
    recent_pos: usize,
    round_len: u32,
    accesses_in_round: u32,
    best: Option<i64>,
    /// Prefetches issued.
    pub issued: u64,
}

impl BestOffsetPrefetcher {
    /// Creates a Best-Offset prefetcher with the canonical small offset
    /// candidate list.
    pub fn new() -> Self {
        let offsets: Vec<i64> = vec![1, 2, 3, 4, 5, 6, 8, 9, 12, 16, -1, -2];
        Self {
            scores: vec![0; offsets.len()],
            offsets,
            recent: vec![u64::MAX; 64],
            recent_pos: 0,
            round_len: 256,
            accesses_in_round: 0,
            best: None,
            issued: 0,
        }
    }

    /// Observes an L2 demand access (line-granular) and returns a prefetch
    /// line address if an offset has been learned.
    pub fn observe(&mut self, line: u64, out: &mut Vec<u64>) {
        let line_no = line / CACHELINE;
        // Score every candidate: does line - offset appear in history?
        for (i, &off) in self.offsets.iter().enumerate() {
            let wanted = line_no as i64 - off;
            if wanted >= 0 && self.recent.contains(&(wanted as u64)) {
                self.scores[i] += 1;
            }
        }
        self.recent[self.recent_pos] = line_no;
        self.recent_pos = (self.recent_pos + 1) % self.recent.len();

        self.accesses_in_round += 1;
        if self.accesses_in_round >= self.round_len {
            let (best_idx, &best_score) = self
                .scores
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .expect("non-empty offsets");
            // Require a minimum hit rate before trusting the offset.
            self.best = (best_score >= self.round_len / 8).then(|| self.offsets[best_idx]);
            self.scores.iter_mut().for_each(|s| *s = 0);
            self.accesses_in_round = 0;
        }

        if let Some(off) = self.best {
            let target = line_no as i64 + off;
            if target > 0 {
                out.push(target as u64 * CACHELINE);
                self.issued += 1;
            }
        }
    }
}

impl Default for BestOffsetPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_learns_sequential_stream() {
        let mut pf = StridePrefetcher::new(2);
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            pf.observe(Site(1), 0x1000 + i * 8, &mut out);
        }
        // Element stride 8 is promoted to line granularity (64 B).
        assert_eq!(out, vec![0x1000 + 7 * 8 + 64, 0x1000 + 7 * 8 + 128]);
    }

    #[test]
    fn stride_ignores_random_sites() {
        let mut pf = StridePrefetcher::new(2);
        let mut out = Vec::new();
        for addr in [0x10u64, 0x5000, 0x220, 0x9000, 0x44] {
            pf.observe(Site(2), addr, &mut out);
        }
        assert!(out.is_empty(), "no stable stride → no prefetch");
    }

    #[test]
    fn stride_tables_are_per_site() {
        let mut pf = StridePrefetcher::new(1);
        let mut out = Vec::new();
        // Interleave two streams with different strides; both should train.
        for i in 0..8u64 {
            pf.observe(Site(1), 0x1000 + i * 8, &mut out);
            pf.observe(Site(2), 0x9000 + i * 64, &mut out);
        }
        assert!(out.contains(&(0x1000 + 7 * 8 + 64)), "promoted line stride");
        assert!(out.contains(&(0x9000 + 8 * 64)));
    }

    #[test]
    fn best_offset_learns_unit_stride() {
        let mut pf = BestOffsetPrefetcher::new();
        let mut out = Vec::new();
        for i in 0..600u64 {
            out.clear();
            pf.observe(i * CACHELINE, &mut out);
        }
        // On a unit-stride stream every positive offset scores equally; any
        // learned positive offset is a correct ahead-of-stream prefetch.
        assert_eq!(out.len(), 1, "a learned offset must fire every access");
        let ahead = (out[0] / CACHELINE) as i64 - 599;
        assert!(
            (1..=16).contains(&ahead),
            "prefetch must run ahead of the stream, offset = {ahead}"
        );
    }

    #[test]
    fn best_offset_stays_quiet_on_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut pf = BestOffsetPrefetcher::new();
        let mut out = Vec::new();
        for _ in 0..600 {
            let line: u64 = rng.gen_range(0u64..1_000_000) * CACHELINE;
            pf.observe(line, &mut out);
        }
        // Random streams must not sustain a learned offset for long.
        assert!(
            pf.issued < 300,
            "random stream produced {} prefetches",
            pf.issued
        );
    }
}
