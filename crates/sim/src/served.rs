//! Re-entrant single-core driver for a serving scheduler.
//!
//! [`System::try_run_accelerated`] drives a fixed set of engines from
//! cycle 0 to completion and then consumes itself — one job per core per
//! run. A serving layer time-sharing a core across many jobs needs the
//! opposite shape: a slot whose clock, core, and memory hierarchy persist
//! while *different* accelerator incarnations come and go. [`ServedCore`]
//! is that slot: each [`ServedCore::drive`] call advances the same clock
//! loop as the batch driver for up to one scheduling quantum, then
//! returns control to the scheduler, which may quiesce the engine, swap
//! in another tenant's context, and call `drive` again.
//!
//! The slot accumulates per-tenant busy cycles ([`SlotStats`]) so the
//! serving layer can report who consumed the machine.
//!
//! [`System::try_run_accelerated`]: crate::System::try_run_accelerated

use std::collections::BTreeMap;

use crate::accel::Accelerator;
use crate::core::{Core, CoreConfig, OpSource};
use crate::memsys::{MemSys, MemSysConfig};
use crate::op::Op;
use crate::system::{AccelSource, SimError, Watchdog, CYCLE_LIMIT, DEFAULT_WATCHDOG_CYCLES};

/// Result of one [`ServedCore::drive`] quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Simulated cycles consumed by this call.
    pub cycles: u64,
    /// Whether the accelerator (and the core consuming its ops) fully
    /// drained — the job segment is complete, nothing is left in flight.
    pub finished: bool,
}

/// Aggregate statistics of one serving slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Cycles spent driving jobs.
    pub busy_cycles: u64,
    /// Cycles skipped while the slot sat idle awaiting arrivals.
    pub idle_cycles: u64,
    /// Job segments driven to completion.
    pub segments_finished: u64,
    /// Preemptions (quanta that expired with work still in flight).
    pub preemptions: u64,
    /// Times the slot was rebooted after a crash or hang (fresh core and
    /// memory hierarchy; the clock stays monotonic).
    pub reboots: u64,
    /// Busy cycles attributed per tenant id (deterministic order).
    pub tenant_cycles: BTreeMap<u32, u64>,
}

/// One serving slot: a persistent core + private memory hierarchy whose
/// clock survives across jobs. See the module docs.
#[derive(Debug)]
pub struct ServedCore {
    core: Core,
    mem: MemSys,
    source: AccelSource,
    now: u64,
    watchdog_cycles: u64,
    stats: SlotStats,
    acks: Vec<u32>,
    scratch: Vec<Op>,
    slot: usize,
    core_cfg: CoreConfig,
    mem_cfg: MemSysConfig,
}

impl ServedCore {
    /// Builds a slot from a core and memory configuration. The memory
    /// configuration should describe a single-core hierarchy (the slot
    /// owns it exclusively). Both configurations are retained so the slot
    /// can [`reboot`](Self::reboot) after a fault.
    pub fn new(core: CoreConfig, mem: MemSysConfig) -> Self {
        Self {
            core: Core::new(0, core),
            mem: MemSys::new(mem),
            source: AccelSource::default(),
            now: 0,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            stats: SlotStats::default(),
            acks: Vec::new(),
            scratch: Vec::new(),
            slot: 0,
            core_cfg: core,
            mem_cfg: mem,
        }
    }

    /// The slot's current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Names the slot for diagnostics: the id shows up in watchdog dumps
    /// so a serving-layer hang identifies its fault domain.
    pub fn set_slot(&mut self, slot: usize) {
        self.slot = slot;
    }

    /// The slot id (see [`set_slot`](Self::set_slot)).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The slot's accumulated statistics.
    pub fn stats(&self) -> &SlotStats {
        &self.stats
    }

    /// The slot's memory hierarchy — mutable so a scheduler can pass it
    /// to an engine's quiesce path (sealing the open outQ chunk issues
    /// accelerator writes at deschedule time).
    pub fn mem_mut(&mut self) -> &mut MemSys {
        &mut self.mem
    }

    /// Overrides the per-quantum no-progress watchdog window.
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog_cycles = cycles.max(1);
    }

    /// Jumps the slot clock forward to `cycle` (an idle gap before the
    /// next arrival). No-op if the slot is already past it.
    pub fn skip_idle_to(&mut self, cycle: u64) {
        if cycle > self.now {
            let delta = cycle - self.now;
            self.core.account_gap(delta);
            self.stats.idle_cycles += delta;
            self.now = cycle;
        }
    }

    /// Advances the slot by up to `quantum` cycles while driving `accel`,
    /// attributing the consumed cycles to `tenant`. Returns early with
    /// `finished: true` as soon as the engine reports done, its op stream
    /// has drained, and the core is idle.
    ///
    /// The quantum is a scheduling bound, not a correctness bound: the
    /// caller decides whether to preempt (quiesce the engine) or grant
    /// another quantum when the call returns unfinished.
    pub fn drive(
        &mut self,
        accel: &mut dyn Accelerator,
        tenant: u32,
        quantum: u64,
    ) -> Result<DriveOutcome, SimError> {
        let start = self.now;
        let mut watchdog = Watchdog::new(self.watchdog_cycles);
        loop {
            accel.tick(self.now, 0, &mut self.mem);
            self.scratch.clear();
            accel.drain_ops(&mut self.scratch);
            self.source.buf.extend(self.scratch.drain(..));
            self.source.producer_done = accel.done();

            self.acks.clear();
            self.core
                .tick(self.now, &mut self.source, &mut self.mem, &mut self.acks);
            for &chunk in &self.acks {
                accel.ack_chunk(chunk, self.now);
            }
            let finished = self.source.done() && self.core.idle() && accel.done();
            self.now += 1;
            if finished {
                return Ok(self.outcome(start, tenant, true));
            }
            if self.now >= CYCLE_LIMIT {
                return Err(SimError::CycleLimit { limit: CYCLE_LIMIT });
            }
            let sig = [
                self.core.stats.committed,
                self.mem.demand_loads,
                self.mem.accel_reads,
                self.mem.accel_outq_lines,
            ];
            if watchdog.stuck(self.now, sig) {
                let dump = self.dump_state(accel, tenant);
                eprintln!("{dump}");
                return Err(SimError::Watchdog {
                    cycle: self.now,
                    window: self.watchdog_cycles,
                    dump,
                });
            }
            if self.now - start >= quantum {
                return Ok(self.outcome(start, tenant, false));
            }
        }
    }

    /// Drives `accel` until it fully drains, with no quantum bound (used
    /// to flush a parked engine's sealed-chunk ops after a quiesce).
    pub fn drain(&mut self, accel: &mut dyn Accelerator, tenant: u32) -> Result<u64, SimError> {
        let out = self.drive(accel, tenant, u64::MAX)?;
        debug_assert!(out.finished, "unbounded drive only returns on drain");
        Ok(out.cycles)
    }

    /// Charges `cycles` of host-side work to the slot, attributed to
    /// `tenant`. Application pipelines use this for the dense
    /// stage-boundary phases that run on the core but outside any engine
    /// drive (axpy/dot updates, convergence tests, contribution
    /// refreshes): the slot's clock advances and the cycles count as
    /// busy, not idle.
    pub fn charge_busy(&mut self, tenant: u32, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.core.account_gap(cycles);
        self.now += cycles;
        self.stats.busy_cycles += cycles;
        *self.stats.tenant_cycles.entry(tenant).or_insert(0) += cycles;
    }

    /// Rebuilds the slot after a crash or hang: fresh core and memory
    /// hierarchy from the retained configurations, all in-flight state of
    /// the dead incarnation discarded. The clock stays monotonic and
    /// skips forward to `restart_at` (the configured reboot delay).
    pub fn reboot(&mut self, restart_at: u64) {
        self.core = Core::new(0, self.core_cfg);
        self.mem = MemSys::new(self.mem_cfg);
        self.source = AccelSource::default();
        self.acks.clear();
        self.scratch.clear();
        self.stats.reboots += 1;
        self.skip_idle_to(restart_at);
    }

    /// Discards the op stream and core pipeline state of a dead engine
    /// incarnation without rebooting the slot (caches stay warm, no
    /// penalty). Required before reusing a slot whose engine was torn
    /// down mid-quantum: the core may still hold that engine's chunk-end
    /// markers, and letting them drain would ack chunks the *next*
    /// incarnation hasn't produced.
    pub fn flush_inflight(&mut self) {
        self.core = Core::new(0, self.core_cfg);
        self.source = AccelSource::default();
        self.acks.clear();
        self.scratch.clear();
    }

    /// Simulates a slot hang caught by the progress watchdog: the slot
    /// burns one full watchdog window with no forward progress (the
    /// cycles are attributed to `tenant`, whose job occupied the slot),
    /// then reports the same typed [`SimError::Watchdog`] — including
    /// the diagnostic dump — that a genuine wedge inside
    /// [`drive`](Self::drive) produces. The caller decides what survives:
    /// typically it discards the engine and [`reboot`](Self::reboot)s.
    pub fn hang(&mut self, accel: &dyn Accelerator, tenant: u32) -> SimError {
        let window = self.watchdog_cycles;
        self.core.account_gap(window);
        self.now += window;
        self.stats.busy_cycles += window;
        *self.stats.tenant_cycles.entry(tenant).or_insert(0) += window;
        let dump = self.dump_state(accel, tenant);
        SimError::Watchdog {
            cycle: self.now,
            window,
            dump,
        }
    }

    fn outcome(&mut self, start: u64, tenant: u32, finished: bool) -> DriveOutcome {
        let cycles = self.now - start;
        self.stats.busy_cycles += cycles;
        *self.stats.tenant_cycles.entry(tenant).or_insert(0) += cycles;
        if finished {
            self.stats.segments_finished += 1;
        } else {
            self.stats.preemptions += 1;
        }
        DriveOutcome { cycles, finished }
    }

    fn dump_state(&self, accel: &dyn Accelerator, tenant: u32) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "-- served-core watchdog dump @ cycle {} (slot {}, tenant {tenant}) --",
            self.now, self.slot
        );
        let _ = writeln!(
            s,
            "core0: committed={} idle={}",
            self.core.stats.committed,
            self.core.idle()
        );
        let _ = writeln!(
            s,
            "mem: demand_loads={} accel_reads={} outq_lines={}",
            self.mem.demand_loads, self.mem.accel_reads, self.mem.accel_outq_lines
        );
        let line = accel.status_line();
        if !line.is_empty() {
            let _ = writeln!(s, "accel: {line}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::NullAccelerator;
    use crate::op::{Deps, Op, OpId, OpKind, Site};

    fn slot() -> ServedCore {
        ServedCore::new(CoreConfig::neoverse_n1_like(), MemSysConfig::table5(1))
    }

    /// Emits `n` int ops, one per tick, then reports done.
    #[derive(Debug)]
    struct Ticker {
        left: u64,
        next: u64,
    }

    impl Accelerator for Ticker {
        fn tick(&mut self, _now: u64, _core: usize, _mem: &mut MemSys) {
            if self.left > 0 {
                self.left -= 1;
                self.next += 1;
            }
        }
        fn drain_ops(&mut self, out: &mut Vec<Op>) {
            if self.next > 0 {
                out.push(Op {
                    id: OpId(self.next),
                    site: Site(1),
                    kind: OpKind::IntAlu,
                    deps: Deps::NONE,
                    visible_at: 0,
                });
                self.next = 0;
            }
        }
        fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}
        fn done(&self) -> bool {
            self.left == 0
        }
    }

    #[test]
    fn quantum_bounds_a_drive_and_the_clock_persists() {
        let mut s = slot();
        let mut accel = Ticker { left: 500, next: 0 };
        let out = s.drive(&mut accel, 7, 100).expect("no wedge");
        assert!(!out.finished);
        assert_eq!(out.cycles, 100);
        assert_eq!(s.now(), 100);
        let out = s.drive(&mut accel, 7, u64::MAX).expect("no wedge");
        assert!(out.finished);
        assert!(s.now() > 500, "all 500 ops must commit");
        assert_eq!(s.stats().preemptions, 1);
        assert_eq!(s.stats().segments_finished, 1);
        assert_eq!(
            s.stats().tenant_cycles.get(&7).copied(),
            Some(s.stats().busy_cycles)
        );
    }

    #[test]
    fn idle_gaps_are_skipped_and_accounted() {
        let mut s = slot();
        s.skip_idle_to(10_000);
        assert_eq!(s.now(), 10_000);
        assert_eq!(s.stats().idle_cycles, 10_000);
        // Skipping backwards is a no-op.
        s.skip_idle_to(5_000);
        assert_eq!(s.now(), 10_000);
        let mut accel = NullAccelerator;
        let out = s.drive(&mut accel, 0, 50).expect("drains");
        assert!(out.finished, "a null job drains immediately");
        assert!(s.now() >= 10_000);
    }

    /// Busy forever, produces nothing: the per-quantum watchdog must fire
    /// even though the scheduler asked for an unbounded drain.
    #[derive(Debug)]
    struct Wedged;

    impl Accelerator for Wedged {
        fn tick(&mut self, _now: u64, _core: usize, _mem: &mut MemSys) {}
        fn drain_ops(&mut self, _out: &mut Vec<Op>) {}
        fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}
        fn done(&self) -> bool {
            false
        }
        fn status_line(&self) -> String {
            "wedged-tenant-job".into()
        }
    }

    #[test]
    fn watchdog_fires_inside_a_drive() {
        let mut s = slot();
        s.set_watchdog(5_000);
        s.set_slot(2);
        match s.drive(&mut Wedged, 3, u64::MAX) {
            Err(SimError::Watchdog { window, dump, .. }) => {
                assert_eq!(window, 5_000);
                assert!(dump.contains("wedged-tenant-job"));
                // Satellite pin: the dump names the fault domain — slot
                // id and tenant id — not just the system.
                assert!(dump.contains("slot 2"), "dump names the slot:\n{dump}");
                assert!(dump.contains("tenant 3"), "dump names the tenant:\n{dump}");
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
    }

    #[test]
    fn injected_hang_burns_one_window_and_types_the_error() {
        let mut s = slot();
        s.set_watchdog(5_000);
        s.set_slot(1);
        let before = s.now();
        match s.hang(&Wedged, 4) {
            SimError::Watchdog {
                cycle,
                window,
                dump,
            } => {
                assert_eq!(window, 5_000);
                assert_eq!(cycle, before + 5_000);
                assert!(dump.contains("slot 1"));
                assert!(dump.contains("tenant 4"));
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
        assert_eq!(s.now(), before + 5_000);
        assert_eq!(s.stats().busy_cycles, 5_000, "hang cycles count as busy");
        assert_eq!(s.stats().tenant_cycles.get(&4).copied(), Some(5_000));
    }

    #[test]
    fn charge_busy_advances_the_clock_and_attributes_the_tenant() {
        let mut s = slot();
        s.charge_busy(5, 1_200);
        assert_eq!(s.now(), 1_200);
        assert_eq!(s.stats().busy_cycles, 1_200);
        assert_eq!(s.stats().idle_cycles, 0, "host work is busy, not idle");
        assert_eq!(s.stats().tenant_cycles.get(&5).copied(), Some(1_200));
        s.charge_busy(5, 0);
        assert_eq!(s.now(), 1_200, "zero charge is a no-op");
    }

    #[test]
    fn reboot_keeps_the_clock_monotonic_and_the_slot_usable() {
        let mut s = slot();
        let mut accel = Ticker { left: 200, next: 0 };
        let out = s.drive(&mut accel, 1, 50).expect("no wedge");
        assert!(!out.finished);
        let crashed_at = s.now();
        // The engine incarnation dies with the slot; reboot and prove the
        // fresh core/mem can still run a job to completion.
        s.reboot(crashed_at + 2_000);
        assert_eq!(s.stats().reboots, 1);
        assert_eq!(s.now(), crashed_at + 2_000, "reboot delay is idle time");
        let mut fresh = Ticker { left: 40, next: 0 };
        let out = s.drive(&mut fresh, 1, u64::MAX).expect("no wedge");
        assert!(out.finished, "a rebooted slot serves again");
        assert!(s.now() > crashed_at + 2_000);
    }

    #[test]
    fn flush_inflight_discards_the_dead_incarnations_ops() {
        let mut s = slot();
        let mut accel = Ticker { left: 300, next: 0 };
        let out = s.drive(&mut accel, 6, 40).expect("no wedge");
        assert!(!out.finished, "ops still in flight when the engine dies");
        s.flush_inflight();
        assert_eq!(s.stats().reboots, 0, "a flush is not a reboot");
        // A fresh incarnation on the same slot must drain on its own ops
        // only — nothing left over from the dead one.
        let mut fresh = Ticker { left: 10, next: 0 };
        let out = s.drive(&mut fresh, 6, u64::MAX).expect("no wedge");
        assert!(out.finished);
    }
}
