//! Re-entrant single-core driver for a serving scheduler.
//!
//! [`System::try_run_accelerated`] drives a fixed set of engines from
//! cycle 0 to completion and then consumes itself — one job per core per
//! run. A serving layer time-sharing a core across many jobs needs the
//! opposite shape: a slot whose clock, core, and memory hierarchy persist
//! while *different* accelerator incarnations come and go. [`ServedCore`]
//! is that slot: each [`ServedCore::drive`] call advances the same clock
//! loop as the batch driver for up to one scheduling quantum, then
//! returns control to the scheduler, which may quiesce the engine, swap
//! in another tenant's context, and call `drive` again.
//!
//! The slot accumulates per-tenant busy cycles ([`SlotStats`]) so the
//! serving layer can report who consumed the machine.
//!
//! [`System::try_run_accelerated`]: crate::System::try_run_accelerated

use std::collections::BTreeMap;

use crate::accel::Accelerator;
use crate::core::{Core, CoreConfig, OpSource};
use crate::memsys::{MemSys, MemSysConfig};
use crate::op::Op;
use crate::system::{AccelSource, SimError, Watchdog, CYCLE_LIMIT, DEFAULT_WATCHDOG_CYCLES};

/// Result of one [`ServedCore::drive`] quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Simulated cycles consumed by this call.
    pub cycles: u64,
    /// Whether the accelerator (and the core consuming its ops) fully
    /// drained — the job segment is complete, nothing is left in flight.
    pub finished: bool,
}

/// Aggregate statistics of one serving slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Cycles spent driving jobs.
    pub busy_cycles: u64,
    /// Cycles skipped while the slot sat idle awaiting arrivals.
    pub idle_cycles: u64,
    /// Job segments driven to completion.
    pub segments_finished: u64,
    /// Preemptions (quanta that expired with work still in flight).
    pub preemptions: u64,
    /// Busy cycles attributed per tenant id (deterministic order).
    pub tenant_cycles: BTreeMap<u32, u64>,
}

/// One serving slot: a persistent core + private memory hierarchy whose
/// clock survives across jobs. See the module docs.
#[derive(Debug)]
pub struct ServedCore {
    core: Core,
    mem: MemSys,
    source: AccelSource,
    now: u64,
    watchdog_cycles: u64,
    stats: SlotStats,
    acks: Vec<u32>,
    scratch: Vec<Op>,
}

impl ServedCore {
    /// Builds a slot from a core and memory configuration. The memory
    /// configuration should describe a single-core hierarchy (the slot
    /// owns it exclusively).
    pub fn new(core: CoreConfig, mem: MemSysConfig) -> Self {
        Self {
            core: Core::new(0, core),
            mem: MemSys::new(mem),
            source: AccelSource::default(),
            now: 0,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            stats: SlotStats::default(),
            acks: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The slot's current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The slot's accumulated statistics.
    pub fn stats(&self) -> &SlotStats {
        &self.stats
    }

    /// The slot's memory hierarchy — mutable so a scheduler can pass it
    /// to an engine's quiesce path (sealing the open outQ chunk issues
    /// accelerator writes at deschedule time).
    pub fn mem_mut(&mut self) -> &mut MemSys {
        &mut self.mem
    }

    /// Overrides the per-quantum no-progress watchdog window.
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog_cycles = cycles.max(1);
    }

    /// Jumps the slot clock forward to `cycle` (an idle gap before the
    /// next arrival). No-op if the slot is already past it.
    pub fn skip_idle_to(&mut self, cycle: u64) {
        if cycle > self.now {
            let delta = cycle - self.now;
            self.core.account_gap(delta);
            self.stats.idle_cycles += delta;
            self.now = cycle;
        }
    }

    /// Advances the slot by up to `quantum` cycles while driving `accel`,
    /// attributing the consumed cycles to `tenant`. Returns early with
    /// `finished: true` as soon as the engine reports done, its op stream
    /// has drained, and the core is idle.
    ///
    /// The quantum is a scheduling bound, not a correctness bound: the
    /// caller decides whether to preempt (quiesce the engine) or grant
    /// another quantum when the call returns unfinished.
    pub fn drive(
        &mut self,
        accel: &mut dyn Accelerator,
        tenant: u32,
        quantum: u64,
    ) -> Result<DriveOutcome, SimError> {
        let start = self.now;
        let mut watchdog = Watchdog::new(self.watchdog_cycles);
        loop {
            accel.tick(self.now, 0, &mut self.mem);
            self.scratch.clear();
            accel.drain_ops(&mut self.scratch);
            self.source.buf.extend(self.scratch.drain(..));
            self.source.producer_done = accel.done();

            self.acks.clear();
            self.core
                .tick(self.now, &mut self.source, &mut self.mem, &mut self.acks);
            for &chunk in &self.acks {
                accel.ack_chunk(chunk, self.now);
            }
            let finished = self.source.done() && self.core.idle() && accel.done();
            self.now += 1;
            if finished {
                return Ok(self.outcome(start, tenant, true));
            }
            if self.now >= CYCLE_LIMIT {
                return Err(SimError::CycleLimit { limit: CYCLE_LIMIT });
            }
            let sig = [
                self.core.stats.committed,
                self.mem.demand_loads,
                self.mem.accel_reads,
                self.mem.accel_outq_lines,
            ];
            if watchdog.stuck(self.now, sig) {
                let dump = self.dump_state(accel, tenant);
                eprintln!("{dump}");
                return Err(SimError::Watchdog {
                    cycle: self.now,
                    window: self.watchdog_cycles,
                    dump,
                });
            }
            if self.now - start >= quantum {
                return Ok(self.outcome(start, tenant, false));
            }
        }
    }

    /// Drives `accel` until it fully drains, with no quantum bound (used
    /// to flush a parked engine's sealed-chunk ops after a quiesce).
    pub fn drain(&mut self, accel: &mut dyn Accelerator, tenant: u32) -> Result<u64, SimError> {
        let out = self.drive(accel, tenant, u64::MAX)?;
        debug_assert!(out.finished, "unbounded drive only returns on drain");
        Ok(out.cycles)
    }

    fn outcome(&mut self, start: u64, tenant: u32, finished: bool) -> DriveOutcome {
        let cycles = self.now - start;
        self.stats.busy_cycles += cycles;
        *self.stats.tenant_cycles.entry(tenant).or_insert(0) += cycles;
        if finished {
            self.stats.segments_finished += 1;
        } else {
            self.stats.preemptions += 1;
        }
        DriveOutcome { cycles, finished }
    }

    fn dump_state(&self, accel: &dyn Accelerator, tenant: u32) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "-- served-core watchdog dump @ cycle {} (tenant {tenant}) --",
            self.now
        );
        let _ = writeln!(
            s,
            "core0: committed={} idle={}",
            self.core.stats.committed,
            self.core.idle()
        );
        let _ = writeln!(
            s,
            "mem: demand_loads={} accel_reads={} outq_lines={}",
            self.mem.demand_loads, self.mem.accel_reads, self.mem.accel_outq_lines
        );
        let line = accel.status_line();
        if !line.is_empty() {
            let _ = writeln!(s, "accel: {line}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::NullAccelerator;
    use crate::op::{Deps, Op, OpId, OpKind, Site};

    fn slot() -> ServedCore {
        ServedCore::new(CoreConfig::neoverse_n1_like(), MemSysConfig::table5(1))
    }

    /// Emits `n` int ops, one per tick, then reports done.
    #[derive(Debug)]
    struct Ticker {
        left: u64,
        next: u64,
    }

    impl Accelerator for Ticker {
        fn tick(&mut self, _now: u64, _core: usize, _mem: &mut MemSys) {
            if self.left > 0 {
                self.left -= 1;
                self.next += 1;
            }
        }
        fn drain_ops(&mut self, out: &mut Vec<Op>) {
            if self.next > 0 {
                out.push(Op {
                    id: OpId(self.next),
                    site: Site(1),
                    kind: OpKind::IntAlu,
                    deps: Deps::NONE,
                    visible_at: 0,
                });
                self.next = 0;
            }
        }
        fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}
        fn done(&self) -> bool {
            self.left == 0
        }
    }

    #[test]
    fn quantum_bounds_a_drive_and_the_clock_persists() {
        let mut s = slot();
        let mut accel = Ticker { left: 500, next: 0 };
        let out = s.drive(&mut accel, 7, 100).expect("no wedge");
        assert!(!out.finished);
        assert_eq!(out.cycles, 100);
        assert_eq!(s.now(), 100);
        let out = s.drive(&mut accel, 7, u64::MAX).expect("no wedge");
        assert!(out.finished);
        assert!(s.now() > 500, "all 500 ops must commit");
        assert_eq!(s.stats().preemptions, 1);
        assert_eq!(s.stats().segments_finished, 1);
        assert_eq!(
            s.stats().tenant_cycles.get(&7).copied(),
            Some(s.stats().busy_cycles)
        );
    }

    #[test]
    fn idle_gaps_are_skipped_and_accounted() {
        let mut s = slot();
        s.skip_idle_to(10_000);
        assert_eq!(s.now(), 10_000);
        assert_eq!(s.stats().idle_cycles, 10_000);
        // Skipping backwards is a no-op.
        s.skip_idle_to(5_000);
        assert_eq!(s.now(), 10_000);
        let mut accel = NullAccelerator;
        let out = s.drive(&mut accel, 0, 50).expect("drains");
        assert!(out.finished, "a null job drains immediately");
        assert!(s.now() >= 10_000);
    }

    /// Busy forever, produces nothing: the per-quantum watchdog must fire
    /// even though the scheduler asked for an unbounded drain.
    #[derive(Debug)]
    struct Wedged;

    impl Accelerator for Wedged {
        fn tick(&mut self, _now: u64, _core: usize, _mem: &mut MemSys) {}
        fn drain_ops(&mut self, _out: &mut Vec<Op>) {}
        fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}
        fn done(&self) -> bool {
            false
        }
        fn status_line(&self) -> String {
            "wedged-tenant-job".into()
        }
    }

    #[test]
    fn watchdog_fires_inside_a_drive() {
        let mut s = slot();
        s.set_watchdog(5_000);
        match s.drive(&mut Wedged, 3, u64::MAX) {
            Err(SimError::Watchdog { window, dump, .. }) => {
                assert_eq!(window, 5_000);
                assert!(dump.contains("wedged-tenant-job"));
                assert!(dump.contains("tenant 3"));
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
    }
}
