//! Run-level statistics and the roofline model of Figure 12.

use crate::core::CoreStats;

/// Aggregate counters of one cache level (summed over all instances of
/// that level: per-core L1s/L2s, LLC slices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheLevelStats {
    /// Accesses served from resident lines.
    pub hits: u64,
    /// Primary misses (a new fetch was issued).
    pub misses: u64,
    /// Secondary misses merged into an already in-flight fetch.
    pub merged: u64,
    /// Dirty lines evicted (writeback traffic).
    pub writebacks: u64,
}

impl CacheLevelStats {
    /// Adds one cache instance's counters into this aggregate.
    pub fn absorb(&mut self, hits: u64, misses: u64, merged: u64, writebacks: u64) {
        self.hits += hits;
        self.misses += misses;
        self.merged += merged;
        self.writebacks += writebacks;
    }

    /// Fraction of accesses that issued a new fetch (merged accesses reuse
    /// an in-flight one, so they count in the denominator only).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.merged;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Memory-hierarchy counters of one run (the cache/DRAM columns of the
/// `results/bench.json` rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemStats {
    /// All private L1Ds combined.
    pub l1: CacheLevelStats,
    /// All private L2s combined.
    pub l2: CacheLevelStats,
    /// All LLC slices combined.
    pub llc: CacheLevelStats,
    /// Cachelines read from DRAM.
    pub dram_lines_read: u64,
    /// Cachelines written to DRAM.
    pub dram_lines_written: u64,
    /// DRAM accesses that hit an open row buffer.
    pub dram_row_hits: u64,
    /// DRAM accesses that opened a new row.
    pub dram_row_misses: u64,
}

/// Statistics of one complete simulated run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Wall-clock cycles of the whole run (slowest core).
    pub cycles: u64,
    /// Per-core accounting.
    pub cores: Vec<CoreStats>,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// DRAM row-buffer hit fraction.
    pub dram_row_hit_rate: f64,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Cache and DRAM counters.
    pub mem: MemStats,
}

impl RunStats {
    /// Aggregate of all per-core stats.
    pub fn total(&self) -> CoreStats {
        let mut acc = CoreStats::default();
        for c in &self.cores {
            acc.merge(c);
        }
        acc
    }

    /// Total FLOPs across cores.
    pub fn flops(&self) -> u64 {
        self.cores.iter().map(|c| c.flops).sum()
    }

    /// Runtime in seconds at the configured clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops() as f64 / self.seconds() / 1e9
        }
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_bytes as f64 / self.seconds() / 1e9
        }
    }

    /// Arithmetic intensity in FLOP/byte (the roofline x-axis).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            0.0
        } else {
            self.flops() as f64 / self.dram_bytes as f64
        }
    }

    /// Average load-to-use latency across cores, weighted by load count.
    pub fn avg_load_to_use(&self) -> f64 {
        let t = self.total();
        t.avg_load_to_use()
    }

    /// Normalized `(committing, frontend, backend)` cycle fractions
    /// aggregated over cores.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        self.total().breakdown()
    }

    /// One point of a roofline plot.
    pub fn roofline_point(&self) -> RooflinePoint {
        RooflinePoint {
            intensity: self.arithmetic_intensity(),
            gflops: self.gflops(),
            bandwidth_gbs: self.bandwidth_gbs(),
        }
    }

    /// Renders the run as a hierarchical [`tmu_trace::StatsRegistry`] with
    /// gem5-style dotted names (`system.core0.backend`, `system.l1.hits`).
    /// Counters are the same `u64`s as the struct fields — this is a view,
    /// not a second accounting — so consumers reading either source see
    /// identical numbers.
    pub fn registry(&self) -> tmu_trace::StatsRegistry {
        let mut r = tmu_trace::StatsRegistry::new();
        r.set_counter("system.cycles", self.cycles);
        r.set_gauge("system.freq_ghz", self.freq_ghz);
        for (i, c) in self.cores.iter().enumerate() {
            let p = format!("system.core{i}");
            r.set_counter(&format!("{p}.committing"), c.committing);
            r.set_counter(&format!("{p}.frontend"), c.frontend);
            r.set_counter(&format!("{p}.backend"), c.backend);
            r.set_counter(&format!("{p}.cycles"), c.cycles);
            r.set_counter(&format!("{p}.committed"), c.committed);
            r.set_counter(&format!("{p}.loads"), c.loads);
            r.set_counter(&format!("{p}.load_latency_sum"), c.load_latency_sum);
            r.set_counter(&format!("{p}.flops"), c.flops);
            r.set_counter(&format!("{p}.branches"), c.branches);
            r.set_counter(&format!("{p}.mispredicts"), c.mispredicts);
        }
        for (level, s) in [
            ("l1", &self.mem.l1),
            ("l2", &self.mem.l2),
            ("llc", &self.mem.llc),
        ] {
            r.set_counter(&format!("system.{level}.hits"), s.hits);
            r.set_counter(&format!("system.{level}.misses"), s.misses);
            r.set_counter(&format!("system.{level}.merged"), s.merged);
            r.set_counter(&format!("system.{level}.writebacks"), s.writebacks);
        }
        r.set_counter("system.dram.bytes", self.dram_bytes);
        r.set_counter("system.dram.lines_read", self.mem.dram_lines_read);
        r.set_counter("system.dram.lines_written", self.mem.dram_lines_written);
        r.set_counter("system.dram.row_hits", self.mem.dram_row_hits);
        r.set_counter("system.dram.row_misses", self.mem.dram_row_misses);
        r.set_gauge("system.dram.row_hit_rate", self.dram_row_hit_rate);
        r
    }
}

/// A measured point on a roofline plot (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RooflinePoint {
    /// FLOP per DRAM byte.
    pub intensity: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Achieved DRAM bandwidth (GB/s).
    pub bandwidth_gbs: f64,
}

/// The machine ceilings of a roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Roofline {
    /// Peak compute in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub peak_bandwidth_gbs: f64,
}

impl Roofline {
    /// Builds ceilings for `cores` cores with `lanes` f64 SIMD lanes at
    /// `freq_ghz`, assuming one FMA vector pipe (2 FLOPs/lane/cycle), and
    /// the given DRAM peak.
    pub fn for_machine(cores: usize, lanes: usize, freq_ghz: f64, peak_bw_gbs: f64) -> Self {
        Self {
            peak_gflops: cores as f64 * lanes as f64 * 2.0 * freq_ghz,
            peak_bandwidth_gbs: peak_bw_gbs,
        }
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` (the roofline).
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.peak_bandwidth_gbs).min(self.peak_gflops)
    }

    /// The ridge point: intensity at which the machine turns compute-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_gflops / self.peak_bandwidth_gbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        let core = CoreStats {
            flops: 2_400_000,
            cycles: 1_000_000,
            ..Default::default()
        };
        RunStats {
            cycles: 1_000_000,
            cores: vec![core],
            dram_bytes: 4_800_000,
            dram_row_hit_rate: 0.5,
            freq_ghz: 2.4,
            mem: MemStats::default(),
        }
    }

    #[test]
    fn gflops_and_bandwidth() {
        let s = sample();
        // 2.4 MFLOP over 1M cycles at 2.4 GHz = 1M cycles / 2.4e9 Hz
        // = 416.7 µs → 5.76 GFLOP/s.
        assert!((s.gflops() - 5.76).abs() < 0.01, "{}", s.gflops());
        assert!((s.bandwidth_gbs() - 11.52).abs() < 0.01);
        assert!((s.arithmetic_intensity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roofline_ceilings() {
        // Table 5: 8 cores × 8 lanes × 2 × 2.4 = 307.2 GFLOP/s, 150 GB/s.
        let r = Roofline::for_machine(8, 8, 2.4, 150.0);
        assert!((r.peak_gflops - 307.2).abs() < 0.1);
        assert_eq!(r.attainable(0.1), 15.0);
        assert_eq!(r.attainable(100.0), r.peak_gflops);
        assert!((r.ridge() - 2.048).abs() < 0.01);
    }

    #[test]
    fn cache_level_miss_rate_excludes_merges() {
        let mut l = CacheLevelStats::default();
        l.absorb(6, 2, 2, 1);
        // 2 primary misses out of 10 accesses; the 2 merged accesses rode
        // an in-flight fetch and must not count as new misses.
        assert!((l.miss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(CacheLevelStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn registry_mirrors_stats_fields() {
        let mut s = sample();
        s.mem.l1.absorb(10, 3, 1, 2);
        s.mem.dram_lines_read = 7;
        let r = s.registry();
        assert_eq!(r.counter("system.cycles"), Some(s.cycles));
        assert_eq!(r.counter("system.core0.flops"), Some(2_400_000));
        assert_eq!(r.counter("system.l1.hits"), Some(10));
        assert_eq!(r.counter("system.l1.writebacks"), Some(2));
        assert_eq!(r.counter("system.dram.lines_read"), Some(7));
        assert_eq!(r.gauge("system.dram.row_hit_rate"), Some(0.5));
        assert_eq!(r.counter("system.l2.hits"), Some(0));
    }

    #[test]
    fn totals_merge_cores() {
        let mut s = sample();
        s.cores.push(s.cores[0]);
        assert_eq!(s.total().flops, 4_800_000);
        assert_eq!(s.flops(), 4_800_000);
    }
}
