//! Multicore system driver.
//!
//! A [`System`] owns N cores and the shared memory hierarchy and advances
//! them in a single global clock loop. Baseline (software) runs stream ops
//! from kernel shards running on real threads through bounded channels —
//! generation is functional and instantaneous in simulated time, the
//! channel only bounds host memory. Accelerated runs instead attach one
//! [`Accelerator`] per core and consume the host callback ops the engines
//! produce.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};

use crate::accel::Accelerator;
use crate::core::{Core, CoreConfig, OpSource};
use crate::machine::Machine;
use crate::memsys::{MemSys, MemSysConfig};
use crate::op::{Deps, Op, OpId, OpKind, Site};
use crate::stats::RunStats;

/// Full system configuration: core micro-architecture + memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemConfig {
    /// Core configuration (identical cores).
    pub core: CoreConfig,
    /// Memory system configuration.
    pub mem: MemSysConfig,
}

impl SystemConfig {
    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.mem.cores
    }
}

/// Batch size of the op channel: sends are amortized over this many ops.
const OP_BATCH: usize = 4096;

/// Machine implementation that streams ops to a simulated core through a
/// bounded channel of op batches (used by kernel shard threads).
#[derive(Debug)]
pub struct ChannelMachine {
    tx: SyncSender<Vec<Op>>,
    buf: Vec<Op>,
    next: u64,
}

impl ChannelMachine {
    fn new(tx: SyncSender<Vec<Op>>) -> Self {
        Self {
            tx,
            buf: Vec::with_capacity(OP_BATCH),
            next: 0,
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            // A send error means the simulator side hung up; the shard
            // just keeps generating into the void — results of aborted
            // runs are discarded by the caller.
            let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(OP_BATCH));
            let _ = self.tx.send(batch);
        }
    }
}

impl Drop for ChannelMachine {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Machine for ChannelMachine {
    fn emit(&mut self, site: Site, kind: OpKind, deps: Deps) -> OpId {
        self.next += 1;
        let id = OpId(self.next);
        self.buf.push(Op {
            id,
            site,
            kind,
            deps,
            visible_at: 0,
        });
        if self.buf.len() >= OP_BATCH {
            self.flush();
        }
        id
    }
}

/// Op source backed by a kernel shard's channel.
struct ChannelSource {
    rx: Receiver<Vec<Op>>,
    buf: VecDeque<Op>,
    closed: bool,
}

impl ChannelSource {
    fn new(rx: Receiver<Vec<Op>>) -> Self {
        Self {
            rx,
            buf: VecDeque::with_capacity(2 * OP_BATCH),
            closed: false,
        }
    }

    /// Ensures at least one op is buffered or the stream is known closed.
    /// Blocking is safe: op generation takes zero simulated time.
    fn refill(&mut self) {
        if !self.buf.is_empty() || self.closed {
            return;
        }
        match self.rx.recv() {
            Ok(batch) => {
                self.buf.extend(batch);
                // Opportunistically drain whatever else is ready.
                while self.buf.len() < 4 * OP_BATCH {
                    match self.rx.try_recv() {
                        Ok(batch) => self.buf.extend(batch),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            self.closed = true;
                            break;
                        }
                    }
                }
            }
            Err(_) => self.closed = true,
        }
    }
}

impl OpSource for ChannelSource {
    fn next_visible(&mut self, _now: u64) -> Option<Op> {
        self.refill();
        self.buf.pop_front()
    }

    fn done(&mut self) -> bool {
        self.refill();
        self.closed && self.buf.is_empty()
    }
}

/// Op source fed by an accelerator's callback stream.
#[derive(Debug, Default)]
pub(crate) struct AccelSource {
    pub(crate) buf: VecDeque<Op>,
    pub(crate) producer_done: bool,
}

impl OpSource for AccelSource {
    fn next_visible(&mut self, now: u64) -> Option<Op> {
        if self.buf.front().is_some_and(|op| op.visible_at <= now) {
            self.buf.pop_front()
        } else {
            None
        }
    }

    fn done(&mut self) -> bool {
        self.producer_done && self.buf.is_empty()
    }

    fn next_visible_at(&self) -> Option<u64> {
        self.buf.front().map(|op| op.visible_at)
    }
}

/// Hard cap on simulated cycles — a runaway-model backstop, far above any
/// legitimate run in this repository.
pub const CYCLE_LIMIT: u64 = 20_000_000_000;

/// Default no-forward-progress window of the [`System`] watchdog: far
/// beyond any legitimate stall (DRAM round trips are O(10²) cycles) but
/// cheap to hit when something genuinely wedges.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 10_000_000;

/// Typed failures of a simulation run. The panicking `run*` entry points
/// forward these as panic messages; the `try_run*` variants return them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// More kernel shards than cores.
    TooManyShards {
        /// Shards supplied.
        shards: usize,
        /// Cores available.
        cores: usize,
    },
    /// More accelerators than cores.
    TooManyAccelerators {
        /// Accelerators supplied.
        accels: usize,
        /// Cores available.
        cores: usize,
    },
    /// The progress watchdog detected no forward progress (deadlock or
    /// livelock, e.g. an outQ wedged against a stalled consumer).
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// No-progress window that elapsed.
        window: u64,
        /// Human-readable diagnostic dump of the wedged state.
        dump: String,
    },
    /// The hard [`CYCLE_LIMIT`] backstop was reached.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooManyShards { shards, cores } => {
                write!(f, "more shards than cores ({shards} > {cores})")
            }
            SimError::TooManyAccelerators { accels, cores } => {
                write!(f, "more accelerators than cores ({accels} > {cores})")
            }
            SimError::Watchdog {
                cycle,
                window,
                dump,
            } => write!(
                f,
                "watchdog: no forward progress for {window} cycles at cycle {cycle}\n{dump}"
            ),
            SimError::CycleLimit { limit } => write!(f, "cycle limit exceeded ({limit} cycles)"),
        }
    }
}

impl std::error::Error for SimError {}

/// Forward-progress monitor: fires when an observed signature stays
/// unchanged for a full window of simulated cycles.
pub(crate) struct Watchdog {
    window: u64,
    sig: [u64; 4],
    last_change: u64,
}

impl Watchdog {
    pub(crate) fn new(window: u64) -> Self {
        Self {
            window,
            sig: [u64::MAX; 4],
            last_change: 0,
        }
    }

    /// Returns `true` if `sig` has not changed for a full window ending
    /// at `now`.
    pub(crate) fn stuck(&mut self, now: u64, sig: [u64; 4]) -> bool {
        if sig != self.sig {
            self.sig = sig;
            self.last_change = now;
            return false;
        }
        now.saturating_sub(self.last_change) >= self.window
    }
}

/// The simulated multicore system.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    mem: MemSys,
    cores: Vec<Core>,
    watchdog_cycles: u64,
}

impl System {
    /// Builds a system from `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        #[allow(unused_mut)]
        let mut sys = Self {
            mem: MemSys::new(cfg.mem),
            cores: (0..cfg.cores()).map(|i| Core::new(i, cfg.core)).collect(),
            cfg,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
        };
        #[cfg(feature = "trace")]
        {
            sys.mem.register_trace();
            tmu_trace::with(|t| {
                for (i, core) in sys.cores.iter_mut().enumerate() {
                    core.set_trace(t.component(&format!("system.core{i}")));
                }
            });
        }
        sys
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory hierarchy (statistics access after a run).
    pub fn mem(&self) -> &MemSys {
        &self.mem
    }

    /// Overrides the watchdog's no-forward-progress window (in cycles).
    /// Mostly for tests; the [`DEFAULT_WATCHDOG_CYCLES`] default is far
    /// beyond any legitimate stall.
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog_cycles = cycles.max(1);
    }

    /// Runs one kernel shard per core; each shard generates its op stream
    /// on its own thread. Returns the run statistics.
    ///
    /// # Panics
    ///
    /// Panics if more shards than cores are supplied or the cycle limit is
    /// exceeded.
    pub fn run<F>(&mut self, shards: Vec<F>) -> RunStats
    where
        F: FnOnce(&mut ChannelMachine) + Send,
    {
        match self.try_run(shards) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`System::run`]: returns a typed [`SimError`]
    /// on shard/core mismatch, watchdog abort, or cycle-limit overrun
    /// instead of panicking.
    pub fn try_run<F>(&mut self, shards: Vec<F>) -> Result<RunStats, SimError>
    where
        F: FnOnce(&mut ChannelMachine) + Send,
    {
        if shards.len() > self.cores.len() {
            return Err(SimError::TooManyShards {
                shards: shards.len(),
                cores: self.cores.len(),
            });
        }
        let mut sources: Vec<ChannelSource> = Vec::new();
        let mut result = Ok(());
        std::thread::scope(|scope| {
            for shard in shards {
                let (tx, rx) = sync_channel::<Vec<Op>>(16);
                sources.push(ChannelSource::new(rx));
                scope.spawn(move || {
                    let mut machine = ChannelMachine::new(tx);
                    shard(&mut machine);
                });
            }
            result = self.clock_loop(&mut sources, &mut Vec::new());
            if result.is_err() {
                // Drop the receivers before the scope joins the shard
                // threads: a wedged shard blocked in `send` wakes up with a
                // disconnect error and drains into the void instead of
                // deadlocking the join.
                sources.clear();
            }
        });
        result?;
        Ok(self.collect_stats())
    }

    /// Runs with one accelerator per entry; core `i` consumes the callback
    /// ops produced by `accels[i]`.
    ///
    /// # Panics
    ///
    /// Panics if more accelerators than cores are supplied or the cycle
    /// limit is exceeded.
    pub fn run_accelerated(&mut self, accels: Vec<Box<dyn Accelerator>>) -> RunStats {
        match self.try_run_accelerated(accels) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`System::run_accelerated`]: returns a typed
    /// [`SimError`] instead of panicking. The watchdog monitors committed
    /// ops, demand loads, engine traversal reads, and outQ lines; if none
    /// move for the configured window the run aborts with a diagnostic
    /// dump (see [`System::set_watchdog`]).
    pub fn try_run_accelerated(
        &mut self,
        mut accels: Vec<Box<dyn Accelerator>>,
    ) -> Result<RunStats, SimError> {
        if accels.len() > self.cores.len() {
            return Err(SimError::TooManyAccelerators {
                accels: accels.len(),
                cores: self.cores.len(),
            });
        }
        let mut watchdog = Watchdog::new(self.watchdog_cycles);
        let mut sources: Vec<AccelSource> =
            (0..accels.len()).map(|_| AccelSource::default()).collect();
        let mut now: u64 = 0;
        let mut acks: Vec<u32> = Vec::new();
        let mut scratch: Vec<Op> = Vec::new();
        #[cfg(feature = "trace")]
        let mut sampler =
            tmu_trace::with(|t| tmu_trace::PeriodicSampler::new(t.config().sample_period));
        loop {
            let mut all_done = true;
            for (i, accel) in accels.iter_mut().enumerate() {
                accel.tick(now, i, &mut self.mem);
                scratch.clear();
                accel.drain_ops(&mut scratch);
                sources[i].buf.extend(scratch.drain(..));
                sources[i].producer_done = accel.done();

                acks.clear();
                self.cores[i].tick(now, &mut sources[i], &mut self.mem, &mut acks);
                for &chunk in &acks {
                    accel.ack_chunk(chunk, now);
                }
                if !(sources[i].done() && self.cores[i].idle() && accel.done()) {
                    all_done = false;
                }
            }
            // Idle cores beyond the accelerator count still age.
            for i in accels.len()..self.cores.len() {
                acks.clear();
                let mut empty = AccelSource {
                    producer_done: true,
                    ..Default::default()
                };
                self.cores[i].tick(now, &mut empty, &mut self.mem, &mut acks);
            }
            // Periodic pressure samples: DRAM row-buffer state and the
            // per-engine outstanding-request (MSHR) pool occupancy.
            #[cfg(feature = "trace")]
            if let Some(s) = sampler.as_mut() {
                if s.due(now) {
                    let open = self.mem.dram().open_rows() as u64;
                    let busy: Vec<u64> = (0..accels.len())
                        .map(|i| self.mem.accel_outstanding(i, now) as u64)
                        .collect();
                    tmu_trace::with(|t| {
                        let d = t.component("system.dram");
                        t.event(d, now, tmu_trace::EventKind::DramOpenRows, open);
                        for (i, b) in busy.iter().enumerate() {
                            let c = t.component(&format!("system.core{i}.tmu"));
                            t.event(c, now, tmu_trace::EventKind::MshrBusy, *b);
                        }
                    });
                }
            }
            now += 1;
            if all_done {
                break;
            }
            if now >= CYCLE_LIMIT {
                return Err(SimError::CycleLimit { limit: CYCLE_LIMIT });
            }
            let sig = [
                self.committed_sum(),
                self.mem.demand_loads,
                self.mem.accel_reads,
                self.mem.accel_outq_lines,
            ];
            if watchdog.stuck(now, sig) {
                let dump = self.dump_state(now, &accels);
                return Err(self.watchdog_fire(now, dump));
            }
        }
        self.finalize_cycles(now);
        Ok(self.collect_stats())
    }

    /// Like [`System::run`], but with an Indirect Memory Prefetcher (IMP)
    /// attached to each core (§7.3, Figure 15). The IMP observes ops as
    /// they enter a fetch-lookahead window and prefetches trained indirect
    /// loads into L1.
    pub fn run_with_imp<F>(&mut self, shards: Vec<F>) -> RunStats
    where
        F: FnOnce(&mut ChannelMachine) + Send,
    {
        match self.try_run_with_imp(shards) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`System::run_with_imp`]: returns a typed
    /// [`SimError`] instead of panicking.
    pub fn try_run_with_imp<F>(&mut self, shards: Vec<F>) -> Result<RunStats, SimError>
    where
        F: FnOnce(&mut ChannelMachine) + Send,
    {
        if shards.len() > self.cores.len() {
            return Err(SimError::TooManyShards {
                shards: shards.len(),
                cores: self.cores.len(),
            });
        }
        const WINDOW: usize = 256;
        let mut sources: Vec<ChannelSource> = Vec::new();
        let mut windows: Vec<VecDeque<Op>> = Vec::new();
        let mut imps: Vec<crate::imp::Imp> = Vec::new();
        let mut result = Ok(());
        std::thread::scope(|scope| {
            for shard in shards {
                let (tx, rx) = sync_channel::<Vec<Op>>(16);
                sources.push(ChannelSource::new(rx));
                windows.push(VecDeque::with_capacity(WINDOW));
                imps.push(crate::imp::Imp::new());
                scope.spawn(move || {
                    let mut machine = ChannelMachine::new(tx);
                    shard(&mut machine);
                });
            }
            let mut watchdog = Watchdog::new(self.watchdog_cycles);
            let mut now: u64 = 0;
            let mut acks: Vec<u32> = Vec::new();
            result = loop {
                let mut all_done = true;
                for (i, source) in sources.iter_mut().enumerate() {
                    // Stage ops into the lookahead window; IMP observes
                    // each op as it enters.
                    while windows[i].len() < WINDOW {
                        match source.next_visible(now) {
                            Some(op) => {
                                imps[i].observe(&op, i, now, &mut self.mem);
                                windows[i].push_back(op);
                            }
                            None => break,
                        }
                    }
                    let mut staged = WindowSource {
                        window: &mut windows[i],
                    };
                    acks.clear();
                    self.cores[i].tick(now, &mut staged, &mut self.mem, &mut acks);
                    if !(source.done() && windows[i].is_empty() && self.cores[i].idle()) {
                        all_done = false;
                    }
                }
                now += 1;
                if all_done {
                    break Ok(());
                }
                if now >= CYCLE_LIMIT {
                    break Err(SimError::CycleLimit { limit: CYCLE_LIMIT });
                }
                let sig = [self.committed_sum(), self.mem.demand_loads, 0, 0];
                if watchdog.stuck(now, sig) {
                    let dump = self.dump_state(now, &[]);
                    break Err(self.watchdog_fire(now, dump));
                }
            };
            if result.is_ok() {
                self.finalize_cycles(now);
            } else {
                // See `try_run`: disconnect wedged shard senders before the
                // scope joins their threads.
                sources.clear();
            }
        });
        result?;
        Ok(self.collect_stats())
    }

    fn clock_loop(
        &mut self,
        sources: &mut [ChannelSource],
        acks: &mut Vec<u32>,
    ) -> Result<(), SimError> {
        let mut watchdog = Watchdog::new(self.watchdog_cycles);
        let mut now: u64 = 0;
        loop {
            let mut all_done = true;
            for (i, source) in sources.iter_mut().enumerate() {
                acks.clear();
                self.cores[i].tick(now, source, &mut self.mem, acks);
                if !(source.done() && self.cores[i].idle()) {
                    all_done = false;
                }
            }
            now += 1;
            if all_done {
                break;
            }
            if now >= CYCLE_LIMIT {
                return Err(SimError::CycleLimit { limit: CYCLE_LIMIT });
            }
            let sig = [self.committed_sum(), self.mem.demand_loads, 0, 0];
            if watchdog.stuck(now, sig) {
                let dump = self.dump_state(now, &[]);
                return Err(self.watchdog_fire(now, dump));
            }

            // Idle-cycle skipping: if no core can dispatch or commit before
            // some future cycle, jump the clock there.
            let mut next = u64::MAX;
            let mut can_act_now = false;
            for (i, source) in sources.iter_mut().enumerate() {
                let core = &self.cores[i];
                match core.skip_hint(now) {
                    SkipHint::Never => {
                        if !source.done() {
                            can_act_now = true;
                        }
                    }
                    SkipHint::At(c) => next = next.min(c),
                    SkipHint::Now => can_act_now = true,
                }
            }
            if !can_act_now && next > now && next != u64::MAX {
                // Attribute the skipped gap per core: waiting on an
                // incomplete ROB head is a backend stall, an empty ROB is
                // a frontend stall.
                let delta = next - now;
                for core in self.cores.iter_mut() {
                    core.account_gap(delta);
                }
                now = next;
            }
        }
        self.finalize_cycles(now);
        Ok(())
    }

    fn committed_sum(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.committed).sum()
    }

    /// Renders the wedged-state diagnostic: per-core commit/idle state,
    /// memory-system progress counters, and each attached engine's
    /// [`Accelerator::status_line`].
    fn dump_state(&self, now: u64, accels: &[Box<dyn Accelerator>]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "-- watchdog dump @ cycle {now} --");
        for (i, core) in self.cores.iter().enumerate() {
            let _ = writeln!(
                s,
                "core{i}: committed={} idle={}",
                core.stats.committed,
                core.idle()
            );
        }
        let _ = writeln!(
            s,
            "mem: demand_loads={} accel_reads={} outq_lines={}",
            self.mem.demand_loads, self.mem.accel_reads, self.mem.accel_outq_lines
        );
        for (i, accel) in accels.iter().enumerate() {
            let line = accel.status_line();
            if !line.is_empty() {
                let _ = writeln!(s, "accel{i}: {line}");
            }
        }
        s
    }

    /// Emits the watchdog trace event, prints the dump to stderr, and
    /// builds the typed error.
    fn watchdog_fire(&self, now: u64, dump: String) -> SimError {
        #[cfg(feature = "trace")]
        tmu_trace::with(|t| {
            let c = t.component("system");
            t.event(
                c,
                now,
                tmu_trace::EventKind::WatchdogFired,
                self.watchdog_cycles,
            );
        });
        eprintln!("{dump}");
        SimError::Watchdog {
            cycle: now,
            window: self.watchdog_cycles,
            dump,
        }
    }

    fn finalize_cycles(&mut self, now: u64) {
        // Equalize per-core cycle counts to the run length: cores that went
        // idle early spent the remainder waiting on the slowest core.
        for core in &mut self.cores {
            let idle_tail = now.saturating_sub(core.stats.cycles);
            core.stats.cycles = now;
            core.stats.frontend += idle_tail;
        }
    }

    fn collect_stats(&self) -> RunStats {
        let dram = self.mem.dram();
        let row_total = dram.row_hits + dram.row_misses;
        let stats = RunStats {
            cycles: self.cores.iter().map(|c| c.stats.cycles).max().unwrap_or(0),
            cores: self.cores.iter().map(|c| c.stats).collect(),
            dram_bytes: dram.bytes_moved(),
            dram_row_hit_rate: if row_total == 0 {
                0.0
            } else {
                dram.row_hits as f64 / row_total as f64
            },
            freq_ghz: self.cfg.core.freq_ghz,
            mem: self.mem.stats(),
        };
        // Publish the end-of-run registry to the installed tracer: the flat
        // stats dump and the figure pipeline then read one counter system.
        #[cfg(feature = "trace")]
        tmu_trace::with(|t| {
            t.registry_mut().merge(&stats.registry());
            let (traversals, hop_cycles) = self.mem.mesh().traffic();
            t.registry_mut()
                .set_counter("system.noc.traversals", traversals);
            t.registry_mut()
                .set_counter("system.noc.hop_cycles", hop_cycles);
        });
        stats
    }
}

/// Op source over a staged lookahead window (IMP runs).
struct WindowSource<'a> {
    window: &'a mut VecDeque<Op>,
}

impl OpSource for WindowSource<'_> {
    fn next_visible(&mut self, now: u64) -> Option<Op> {
        if self.window.front().is_some_and(|op| op.visible_at <= now) {
            self.window.pop_front()
        } else {
            None
        }
    }

    fn done(&mut self) -> bool {
        self.window.is_empty()
    }
}

/// Whether a core can make progress now, later, or is fully drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipHint {
    /// The core can dispatch or commit this cycle.
    Now,
    /// Nothing can happen before the given cycle.
    At(u64),
    /// The core is drained (no ROB entries, no blocked fetch).
    Never,
}

impl Core {
    /// Computes the earliest cycle at which this core can make progress,
    /// assuming its op source has ops ready whenever fetch is unblocked.
    pub fn skip_hint(&self, now: u64) -> SkipHint {
        let head = self.head_complete();
        let blocked = self.fetch_blocked();
        match head {
            None => {
                if blocked > now {
                    SkipHint::At(blocked)
                } else {
                    SkipHint::Never
                }
            }
            Some(h) => {
                if self.rob_full() || blocked > now {
                    // Only commits (at head completion) or fetch unblock can
                    // change anything.
                    let mut t = h;
                    if blocked > now && !self.rob_full() {
                        t = t.min(blocked);
                    }
                    if t > now {
                        SkipHint::At(t)
                    } else {
                        SkipHint::Now
                    }
                } else {
                    SkipHint::Now
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Deps;

    fn config(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn single_core_run_completes() {
        let mut sys = System::new(config(1));
        let stats = sys.run(vec![|m: &mut ChannelMachine| {
            for i in 0..10_000u64 {
                let a = m.load(Site(1), 0x10_000 + i * 8, 8, Deps::NONE);
                m.fp_op(2, Deps::from(a));
            }
        }]);
        assert_eq!(stats.total().committed, 20_000);
        assert!(stats.cycles > 0);
        assert_eq!(stats.flops(), 20_000);
    }

    #[test]
    fn multicore_shares_bandwidth() {
        // The same streaming workload on 1 vs 8 cores: 8 cores do 8× the
        // work in less than 8× the time but more than 1× (shared DRAM).
        let shard = |c: usize| {
            move |m: &mut ChannelMachine| {
                for i in 0..50_000u64 {
                    m.load(
                        Site(1),
                        (c as u64 + 1) * 0x1_000_000 + i * 64,
                        8,
                        Deps::NONE,
                    );
                }
            }
        };
        let mut sys1 = System::new(config(1));
        let t1 = sys1.run(vec![shard(0)]).cycles;
        let mut sys8 = System::new(config(8));
        let t8 = sys8.run((0..8).map(shard).collect()).cycles;
        assert!(t8 < t1 * 8, "parallel run must be faster ({t8} vs {t1}×8)");
        assert!(
            t8 as f64 > t1 as f64 * 1.2,
            "8 streams must contend for DRAM ({t8} vs {t1})"
        );
    }

    #[test]
    fn stats_equalize_core_cycles() {
        let mut sys = System::new(config(2));
        let stats = sys.run(vec![
            |m: &mut ChannelMachine| {
                for _ in 0..100 {
                    m.int_op(Deps::NONE);
                }
            },
            |m: &mut ChannelMachine| {
                for i in 0..5_000u64 {
                    m.load(Site(1), 0x40_000_000 + i * 4096, 8, Deps::from(OpId(i)));
                }
            },
        ]);
        assert_eq!(stats.cores[0].cycles, stats.cores[1].cycles);
        assert_eq!(stats.cycles, stats.cores[0].cycles);
    }

    /// An accelerator that claims to be busy forever but never produces
    /// anything — the deadlock/livelock shape the watchdog must catch.
    #[derive(Debug)]
    struct WedgedAccel;

    impl Accelerator for WedgedAccel {
        fn tick(&mut self, _now: u64, _core: usize, _mem: &mut MemSys) {}
        fn drain_ops(&mut self, _out: &mut Vec<Op>) {}
        fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}
        fn done(&self) -> bool {
            false
        }
        fn status_line(&self) -> String {
            "wedged: pretending to work, producing nothing".into()
        }
    }

    #[test]
    fn watchdog_fires_on_wedged_accelerator_with_dump() {
        let mut sys = System::new(config(1));
        sys.set_watchdog(10_000);
        match sys.try_run_accelerated(vec![Box::new(WedgedAccel)]) {
            Err(SimError::Watchdog {
                cycle,
                window,
                dump,
            }) => {
                assert_eq!(window, 10_000);
                assert!((10_000..CYCLE_LIMIT).contains(&cycle));
                assert!(dump.contains("wedged"), "dump must carry accel status");
                assert!(dump.contains("core0"), "dump must carry core state");
            }
            other => panic!("expected watchdog abort, got {other:?}"),
        }
    }

    #[test]
    fn shard_overflow_is_a_typed_error() {
        let mut sys = System::new(config(1));
        let shards: Vec<fn(&mut ChannelMachine)> = vec![|_| {}, |_| {}];
        match sys.try_run(shards) {
            Err(SimError::TooManyShards {
                shards: 2,
                cores: 1,
            }) => {}
            other => panic!("expected TooManyShards, got {other:?}"),
        }
    }

    #[test]
    fn accelerated_run_with_null_accels_terminates() {
        let mut sys = System::new(config(2));
        let stats = sys.run_accelerated(vec![
            Box::new(crate::accel::NullAccelerator),
            Box::new(crate::accel::NullAccelerator),
        ]);
        assert_eq!(stats.total().committed, 0);
    }

    #[test]
    fn dram_traffic_is_recorded() {
        let mut sys = System::new(config(1));
        let stats = sys.run(vec![|m: &mut ChannelMachine| {
            for i in 0..10_000u64 {
                m.load(Site(1), 0x10_000_000 + i * 64, 8, Deps::NONE);
            }
        }]);
        // 10 000 distinct lines = 640 kB minimum of DRAM reads.
        assert!(
            stats.dram_bytes >= 10_000 * 64,
            "bytes = {}",
            stats.dram_bytes
        );
        assert!(stats.bandwidth_gbs() > 1.0);
    }
}
