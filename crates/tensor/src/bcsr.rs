//! Blocked CSR (BCSR): the register-tiled layout of the blocked-SVE
//! backend.
//!
//! The matrix is partitioned into an `R × C` grid of tiles; every tile
//! containing at least one stored entry is materialized as a dense
//! `R × C` value block plus an occupancy bitmask recording which slots
//! hold *stored* entries (an explicitly stored zero keeps its bit, so the
//! layout preserves CSR storage semantics exactly, not just values).
//! Tiles on the right/bottom edge of a matrix whose shape is not a
//! multiple of the block shape are *ragged*: their out-of-bounds slots can
//! never be occupied, but the block storage stays uniform so micro-kernels
//! need no edge cases.
//!
//! Block rows are stored CSR-style: `ptrs` delimits each block row's run
//! of stored blocks, `block_cols` carries the block-column index of each,
//! and blocks within a block row are sorted by block column. Value slots
//! are row-major within a block. Iterating a block row's blocks in order
//! and each block's occupied slots in row-major order therefore visits a
//! matrix row's entries in ascending column order — the same order as the
//! CSR fiber, which is what lets the blocked backend reproduce the
//! reference results bit-identically.

use crate::{CsrMatrix, Idx, Val};

/// A register-tiled blocked-CSR matrix (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    /// Per-block-row delimiters into `block_cols`/`masks` (len = grid rows + 1).
    ptrs: Vec<Idx>,
    /// Block-column index of each stored block.
    block_cols: Vec<Idx>,
    /// Occupancy bitmask of each stored block (bit `r·C + c`).
    masks: Vec<u64>,
    /// Dense value storage, `br · bc` slots per block, row-major in-block.
    vals: Vec<Val>,
    nnz: usize,
}

impl BcsrMatrix {
    /// Extracts the blocked layout from a CSR matrix with `br × bc` tiles.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ br·bc ≤ 64` (the occupancy mask is one `u64`).
    pub fn from_csr(m: &CsrMatrix, br: usize, bc: usize) -> Self {
        assert!(
            br >= 1 && bc >= 1 && br * bc <= 64,
            "block shape {br}x{bc} must have 1..=64 slots"
        );
        let grid_rows = m.rows().div_ceil(br);
        let mut ptrs = Vec::with_capacity(grid_rows + 1);
        ptrs.push(0u32);
        let mut block_cols: Vec<Idx> = Vec::new();
        let mut masks: Vec<u64> = Vec::new();
        let mut vals: Vec<Val> = Vec::new();
        // Scratch mapping block column → slot in this block row's run.
        let mut slot_of: std::collections::BTreeMap<Idx, usize> = std::collections::BTreeMap::new();
        for gr in 0..grid_rows {
            slot_of.clear();
            let row_hi = ((gr + 1) * br).min(m.rows());
            // Pass 1: which block columns appear (sorted by BTreeMap).
            for i in gr * br..row_hi {
                for (c, _) in m.row(i) {
                    let len = slot_of.len();
                    slot_of.entry(c / bc as Idx).or_insert(len);
                }
            }
            // BTreeMap insertion order is row-major, not sorted; renumber
            // the slots by ascending block column.
            for (slot, v) in slot_of.values_mut().enumerate() {
                *v = slot;
            }
            let base_block = masks.len();
            for (&bcidx, _) in slot_of.iter() {
                block_cols.push(bcidx);
                masks.push(0);
            }
            vals.resize(vals.len() + slot_of.len() * br * bc, 0.0);
            // Pass 2: scatter entries into their blocks.
            for i in gr * br..row_hi {
                let r_in = i - gr * br;
                for (c, v) in m.row(i) {
                    let blk = base_block + slot_of[&(c / bc as Idx)];
                    let c_in = c as usize % bc;
                    let slot = r_in * bc + c_in;
                    masks[blk] |= 1u64 << slot;
                    vals[blk * br * bc + slot] = v;
                }
            }
            ptrs.push(masks.len() as Idx);
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            br,
            bc,
            ptrs,
            block_cols,
            masks,
            vals,
            nnz: m.nnz(),
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block shape `(R, C)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Grid shape in blocks `(⌈rows/R⌉, ⌈cols/C⌉)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.rows.div_ceil(self.br), self.cols.div_ceil(self.bc))
    }

    /// Stored entries (identical to the source CSR's nnz).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of materialized blocks.
    pub fn num_blocks(&self) -> usize {
        self.masks.len()
    }

    /// Mean occupied fraction of the materialized blocks' slots
    /// (`nnz / (blocks · R · C)`; 1.0 for an empty matrix, whose padding
    /// waste is zero).
    pub fn occupancy(&self) -> f64 {
        if self.masks.is_empty() {
            1.0
        } else {
            self.nnz as f64 / (self.masks.len() * self.br * self.bc) as f64
        }
    }

    /// Range of block indexes stored for grid row `gr`.
    pub fn block_row_range(&self, gr: usize) -> (usize, usize) {
        (self.ptrs[gr] as usize, self.ptrs[gr + 1] as usize)
    }

    /// Block-column index of stored block `blk`.
    pub fn block_col(&self, blk: usize) -> Idx {
        self.block_cols[blk]
    }

    /// Occupancy bitmask of stored block `blk` (bit `r·C + c`).
    pub fn mask(&self, blk: usize) -> u64 {
        self.masks[blk]
    }

    /// Row-major value slots of stored block `blk` (`R · C` entries,
    /// unoccupied slots zero-filled).
    pub fn block_vals(&self, blk: usize) -> &[Val] {
        &self.vals[blk * self.br * self.bc..(blk + 1) * self.br * self.bc]
    }

    /// Per-block-row pointer array (for binding the layout to the
    /// simulator's address space).
    pub fn ptrs(&self) -> &[Idx] {
        &self.ptrs
    }

    /// Block-column index array.
    pub fn block_cols(&self) -> &[Idx] {
        &self.block_cols
    }

    /// Full value storage (all blocks, row-major in-block).
    pub fn vals(&self) -> &[Val] {
        &self.vals
    }

    /// Densifies to a row-major `rows × cols` buffer.
    pub fn to_dense(&self) -> Vec<Val> {
        let mut out = vec![0.0; self.rows * self.cols];
        let (grid_rows, _) = self.grid();
        for gr in 0..grid_rows {
            let (b0, b1) = self.block_row_range(gr);
            for blk in b0..b1 {
                let gc = self.block_cols[blk] as usize;
                let bv = self.block_vals(blk);
                for r_in in 0..self.br {
                    let i = gr * self.br + r_in;
                    if i >= self.rows {
                        break;
                    }
                    for c_in in 0..self.bc {
                        let j = gc * self.bc + c_in;
                        if j >= self.cols {
                            break;
                        }
                        if self.masks[blk] & (1u64 << (r_in * self.bc + c_in)) != 0 {
                            out[i * self.cols + j] = bv[r_in * self.bc + c_in];
                        }
                    }
                }
            }
        }
        out
    }

    /// Converts back to CSR. Exact inverse of [`BcsrMatrix::from_csr`]:
    /// the round-trip reproduces the source's pointer, index, and value
    /// arrays verbatim (stored zeros included).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut ptrs: Vec<Idx> = Vec::with_capacity(self.rows + 1);
        let mut idxs: Vec<Idx> = Vec::new();
        let mut vals: Vec<Val> = Vec::new();
        ptrs.push(0);
        let (grid_rows, _) = self.grid();
        for gr in 0..grid_rows {
            let (b0, b1) = self.block_row_range(gr);
            for r_in in 0..self.br {
                let i = gr * self.br + r_in;
                if i >= self.rows {
                    break;
                }
                for blk in b0..b1 {
                    let gc = self.block_cols[blk] as usize;
                    let bv = self.block_vals(blk);
                    for c_in in 0..self.bc {
                        let slot = r_in * self.bc + c_in;
                        if self.masks[blk] & (1u64 << slot) != 0 {
                            idxs.push((gc * self.bc + c_in) as Idx);
                            vals.push(bv[slot]);
                        }
                    }
                }
                ptrs.push(idxs.len() as Idx);
            }
        }
        CsrMatrix::from_parts(self.rows, self.cols, ptrs, idxs, vals)
            .expect("BCSR stores a valid CSR structure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CooMatrix};

    #[test]
    fn small_matrix_blocks_and_masks() {
        // 3×5 matrix, 2×2 blocks → ragged right and bottom edges.
        let coo = CooMatrix::from_triplets(
            3,
            5,
            vec![(0, 0, 1.0), (0, 4, 2.0), (1, 1, 3.0), (2, 2, 4.0)],
        )
        .expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        let b = BcsrMatrix::from_csr(&csr, 2, 2);
        assert_eq!(b.grid(), (2, 3));
        // Block row 0 holds block cols {0, 2}; block row 1 holds {1}.
        assert_eq!(b.block_row_range(0), (0, 2));
        assert_eq!(b.block_row_range(1), (2, 3));
        assert_eq!(b.block_cols(), &[0, 2, 1]);
        assert_eq!(b.num_blocks(), 3);
        assert_eq!(b.nnz(), 4);
        // (0,0) and (1,1) live in block 0 at slots 0 and 3.
        assert_eq!(b.mask(0), 0b1001);
        assert_eq!(b.block_vals(0), &[1.0, 0.0, 0.0, 3.0]);
        // (0,4) is alone in the ragged right-edge block.
        assert_eq!(b.mask(1), 0b0001);
        // (2,2) sits in the ragged bottom block row.
        assert_eq!(b.mask(2), 0b0001);
        assert!((b.occupancy() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn dense_roundtrip_matches_csr() {
        let m = gen::uniform(37, 53, 5, 11);
        for (br, bc) in [(1, 1), (2, 2), (4, 8), (8, 8), (3, 5)] {
            let b = BcsrMatrix::from_csr(&m, br, bc);
            let mut want = vec![0.0; 37 * 53];
            for i in 0..37 {
                for (c, v) in m.row(i) {
                    want[i * 53 + c as usize] = v;
                }
            }
            assert_eq!(b.to_dense(), want, "{br}x{bc}");
            assert_eq!(b.to_csr(), m, "{br}x{bc}");
        }
    }

    #[test]
    fn stored_zeros_survive_the_roundtrip() {
        // An explicitly stored zero is storage structure, not absence.
        let csr = CsrMatrix::from_parts(2, 4, vec![0, 2, 2], vec![1, 3], vec![0.0, 7.0])
            .expect("valid parts");
        let b = BcsrMatrix::from_csr(&csr, 2, 2);
        assert_eq!(b.nnz(), 2);
        assert_eq!(b.to_csr(), csr);
    }

    #[test]
    fn empty_matrix_is_blockless() {
        let csr = CsrMatrix::from_parts(0, 0, vec![0], vec![], vec![]).expect("valid");
        let b = BcsrMatrix::from_csr(&csr, 4, 4);
        assert_eq!(b.num_blocks(), 0);
        assert_eq!(b.occupancy(), 1.0);
        assert_eq!(b.to_csr(), csr);
    }

    #[test]
    #[should_panic(expected = "1..=64 slots")]
    fn oversized_blocks_are_rejected() {
        let m = gen::uniform(8, 8, 2, 1);
        let _ = BcsrMatrix::from_csr(&m, 16, 16);
    }
}
