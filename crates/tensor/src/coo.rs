use crate::{FormatError, Idx, Val};

/// A sparse matrix in Coordinate (COO) format (Figure 1a of the paper).
///
/// Stores one `(row, col, value)` triple per non-zero, sorted row-major.
/// COO corresponds to a stack of *singleton* levels in the level-format
/// abstraction of §2.2.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_idxs: Vec<Idx>,
    col_idxs: Vec<Idx>,
    vals: Vec<Val>,
}

impl CooMatrix {
    /// Builds a COO matrix from triplets, sorting them row-major and summing
    /// duplicates *in input order* (taco build semantics): the stored value
    /// of a repeated coordinate is the left-to-right fold of its
    /// occurrences, so the result is bit-reproducible for any input.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] if any coordinate exceeds
    /// the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(Idx, Idx, Val)>,
    ) -> Result<Self, FormatError> {
        for &(r, c, _) in &triplets {
            if r as usize >= rows {
                return Err(FormatError::IndexOutOfBounds {
                    dim: 0,
                    index: r as u64,
                    size: rows as u64,
                });
            }
            if c as usize >= cols {
                return Err(FormatError::IndexOutOfBounds {
                    dim: 1,
                    index: c as u64,
                    size: cols as u64,
                });
            }
        }
        // Stable sort: duplicate coordinates keep their input order, so
        // their values are summed in order of appearance (taco build
        // semantics) — an unstable sort would make the f64 accumulation
        // order, and therefore the stored bits, unspecified.
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_idxs = Vec::with_capacity(triplets.len());
        let mut col_idxs = Vec::with_capacity(triplets.len());
        let mut vals: Vec<Val> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            if let (Some(&lr), Some(&lc)) = (row_idxs.last(), col_idxs.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            row_idxs.push(r);
            col_idxs.push(c);
            vals.push(v);
        }
        Ok(Self {
            rows,
            cols,
            row_idxs,
            col_idxs,
            vals,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row index array (sorted, may repeat).
    pub fn row_idxs(&self) -> &[Idx] {
        &self.row_idxs
    }

    /// Column index array.
    pub fn col_idxs(&self) -> &[Idx] {
        &self.col_idxs
    }

    /// Value array.
    pub fn vals(&self) -> &[Val] {
        &self.vals
    }

    /// Iterates `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, Val)> + '_ {
        self.row_idxs
            .iter()
            .zip(&self.col_idxs)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Dense `rows × cols` representation; useful for small test oracles.
    pub fn to_dense(&self) -> Vec<Vec<Val>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for (r, c, v) in self.iter() {
            out[r as usize][c as usize] += v;
        }
        out
    }
}

/// An order-*n* sparse tensor in Coordinate (COO) format.
///
/// Stores each non-zero as an n-tuple of coordinates plus a value, sorted
/// lexicographically. This is the input format of the paper's MTTKRP and the
/// on-disk format of the FROSTT collection the paper evaluates on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooTensor {
    dims: Vec<usize>,
    /// One coordinate array per mode, all of length `nnz`.
    idxs: Vec<Vec<Idx>>,
    vals: Vec<Val>,
}

impl CooTensor {
    /// Builds a COO tensor from `(coordinates, value)` entries, sorting
    /// lexicographically and summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::RankMismatch`] if a coordinate tuple does not
    /// match `dims.len()`, or [`FormatError::IndexOutOfBounds`] if a
    /// coordinate exceeds the declared dimension.
    pub fn from_entries(
        dims: Vec<usize>,
        mut entries: Vec<(Vec<Idx>, Val)>,
    ) -> Result<Self, FormatError> {
        let order = dims.len();
        for (coord, _) in &entries {
            if coord.len() != order {
                return Err(FormatError::RankMismatch {
                    expected: order,
                    actual: coord.len(),
                });
            }
            for (d, (&c, &size)) in coord.iter().zip(&dims).enumerate() {
                if c as usize >= size {
                    return Err(FormatError::IndexOutOfBounds {
                        dim: d,
                        index: c as u64,
                        size: size as u64,
                    });
                }
            }
        }
        // Stable: duplicates are summed in input order (see
        // `CooMatrix::from_triplets`).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut idxs: Vec<Vec<Idx>> = vec![Vec::with_capacity(entries.len()); order];
        let mut vals: Vec<Val> = Vec::with_capacity(entries.len());
        let mut last: Option<Vec<Idx>> = None;
        for (coord, v) in entries {
            if last.as_deref() == Some(&coord[..]) {
                *vals.last_mut().expect("non-empty on duplicate") += v;
                continue;
            }
            for (d, &c) in coord.iter().enumerate() {
                idxs[d].push(c);
            }
            vals.push(v);
            last = Some(coord);
        }
        Ok(Self { dims, idxs, vals })
    }

    /// Tensor order (number of modes).
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Coordinate array for mode `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.order()`.
    pub fn mode_idxs(&self, d: usize) -> &[Idx] {
        &self.idxs[d]
    }

    /// Value array.
    pub fn vals(&self) -> &[Val] {
        &self.vals
    }

    /// Coordinates of the `p`-th stored non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.nnz()`.
    pub fn coord(&self, p: usize) -> Vec<Idx> {
        self.idxs.iter().map(|m| m[p]).collect()
    }

    /// Iterates `(coordinates, value)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<Idx>, Val)> + '_ {
        (0..self.nnz()).map(move |p| (self.coord(p), self.vals[p]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example matrix of Figure 1 of the paper:
    /// row 0: a@0, b@2 ; row 2: c@1 ; row 3: d@0, e@3
    pub(crate) fn figure1() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 1, 3.0),
                (3, 0, 4.0),
                (3, 3, 5.0),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn triplets_sorted_and_deduped() {
        let m = CooMatrix::from_triplets(2, 2, vec![(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0)])
            .expect("valid");
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_idxs(), &[0, 1]);
        assert_eq!(m.vals(), &[2.0, 4.0]);
    }

    #[test]
    fn duplicates_summed_in_input_order_bitwise() {
        // 1e16 + 1.0 rounds the 1.0 away, so the fold order over a
        // duplicate's occurrences is observable in the stored bits:
        //   (1e16 + 1.0) + 1.0 = 1e16, but (1.0 + 1.0) + 1e16 = 1e16 + 2.
        // The builders pin the input-appearance order.
        let want = (1e16f64 + 1.0) + 1.0;
        let other = (1.0f64 + 1.0) + 1e16;
        assert_ne!(want.to_bits(), other.to_bits(), "orders must differ");
        let dups = vec![(0u32, 0u32, 1e16), (0, 0, 1.0), (0, 0, 1.0)];
        let m = CooMatrix::from_triplets(1, 1, dups).expect("valid");
        assert_eq!(m.vals()[0].to_bits(), want.to_bits());
        // Same contract for the tensor builder.
        let entries = vec![
            (vec![0u32, 0u32], 1e16),
            (vec![0, 0], 1.0),
            (vec![0, 0], 1.0),
        ];
        let t = CooTensor::from_entries(vec![1, 1], entries).expect("valid");
        assert_eq!(t.vals()[0].to_bits(), want.to_bits());
        // And duplicates arriving interleaved with other coordinates still
        // fold in *appearance* order, independent of where sorting moves
        // them — this is what a stable sort guarantees and an unstable
        // sort does not.
        let shuffled = vec![
            (1u32, 0u32, 7.0),
            (0, 0, 1e16),
            (1, 1, 8.0),
            (0, 0, 1.0),
            (0, 0, 1.0),
        ];
        let m = CooMatrix::from_triplets(2, 2, shuffled).expect("valid");
        assert_eq!(m.vals()[0].to_bits(), want.to_bits());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = CooMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert_eq!(
            err,
            FormatError::IndexOutOfBounds {
                dim: 0,
                index: 2,
                size: 2
            }
        );
    }

    #[test]
    fn figure1_layout_matches_paper() {
        let m = figure1();
        assert_eq!(m.row_idxs(), &[0, 0, 2, 3, 3]);
        assert_eq!(m.col_idxs(), &[0, 2, 1, 0, 3]);
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = figure1();
        let d = m.to_dense();
        assert_eq!(d[0][2], 2.0);
        assert_eq!(d[1], vec![0.0; 4]);
        assert_eq!(d[3][3], 5.0);
    }

    #[test]
    fn tensor_sorted_lexicographically() {
        let t = CooTensor::from_entries(
            vec![2, 2, 2],
            vec![
                (vec![1, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![0, 0, 1], 3.0),
            ],
        )
        .expect("valid");
        assert_eq!(t.coord(0), vec![0, 0, 1]);
        assert_eq!(t.coord(1), vec![0, 1, 1]);
        assert_eq!(t.coord(2), vec![1, 0, 0]);
    }

    #[test]
    fn tensor_duplicates_summed() {
        let t = CooTensor::from_entries(vec![2, 2], vec![(vec![1, 1], 1.0), (vec![1, 1], 4.0)])
            .expect("valid");
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.vals(), &[5.0]);
    }

    #[test]
    fn tensor_rank_mismatch_rejected() {
        let err = CooTensor::from_entries(vec![2, 2], vec![(vec![0], 1.0)]).unwrap_err();
        assert!(matches!(err, FormatError::RankMismatch { .. }));
    }
}
