use crate::{CooTensor, Idx, Val};

/// A sparse tensor in Compressed Sparse Fiber (CSF) format (Smith & Karypis).
///
/// CSF generalizes DCSR to arbitrary order: every mode is a *compressed*
/// level. Level `l` stores the distinct coordinates (`idxs(l)`) of that mode
/// under each parent node, and `ptrs(l)` delimits each node's children in
/// level `l + 1`. The last level's positions are parallel to the value
/// array. The paper's SpTC, SpTTV, and SpTTM kernels consume CSF inputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsfTensor {
    dims: Vec<usize>,
    /// `ptrs[l]` delimits children of level-`l` nodes in level `l+1`;
    /// `ptrs` has `order - 1` entries (the leaf level has no children).
    ptrs: Vec<Vec<Idx>>,
    /// `idxs[l]` holds the coordinates of level-`l` nodes; `order` entries.
    idxs: Vec<Vec<Idx>>,
    vals: Vec<Val>,
}

impl CsfTensor {
    /// Builds a CSF tensor from a (sorted, deduplicated) COO tensor.
    pub fn from_coo(coo: &CooTensor) -> Self {
        let order = coo.order();
        let nnz = coo.nnz();
        let mut idxs: Vec<Vec<Idx>> = vec![Vec::new(); order];
        let mut ptrs: Vec<Vec<Idx>> = vec![vec![0]; order.saturating_sub(1)];
        if order == 0 || nnz == 0 {
            return Self {
                dims: coo.dims().to_vec(),
                ptrs,
                idxs,
                vals: Vec::new(),
            };
        }
        // Walk the sorted nnzs once; start a new node at level l whenever the
        // coordinate prefix up to l changes.
        for p in 0..nnz {
            let changed_at = if p == 0 {
                0
            } else {
                let mut l = order;
                for d in 0..order {
                    if coo.mode_idxs(d)[p] != coo.mode_idxs(d)[p - 1] {
                        l = d;
                        break;
                    }
                }
                l
            };
            for l in changed_at..order {
                idxs[l].push(coo.mode_idxs(l)[p]);
                if l + 1 < order {
                    // Opening a node at level l also opens its child list.
                    ptrs[l].push(idxs[l + 1].len() as Idx);
                }
            }
            // Update the terminal child counts for all open ancestors.
            for l in 0..order - 1 {
                let last = ptrs[l].len() - 1;
                ptrs[l][last] = idxs[l + 1].len() as Idx;
            }
        }
        Self {
            dims: coo.dims().to_vec(),
            ptrs,
            idxs,
            vals: coo.vals().to_vec(),
        }
    }

    /// Tensor order (number of modes).
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Coordinates of level-`l` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order()`.
    pub fn idxs(&self, l: usize) -> &[Idx] {
        &self.idxs[l]
    }

    /// Child pointers of level-`l` nodes (`l < order - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order() - 1`.
    pub fn ptrs(&self, l: usize) -> &[Idx] {
        &self.ptrs[l]
    }

    /// Value array, parallel to the leaf level's `idxs`.
    pub fn vals(&self) -> &[Val] {
        &self.vals
    }

    /// Number of nodes at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order()`.
    pub fn num_nodes(&self, l: usize) -> usize {
        self.idxs[l].len()
    }

    /// Iterates the children of node `node` at level `l`.
    ///
    /// Yields `(child_position, child_coordinate)` pairs; for leaf-level
    /// parents the child position indexes [`CsfTensor::vals`].
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order() - 1` or `node` is out of bounds.
    pub fn children(&self, l: usize, node: usize) -> CsfNodeIter<'_> {
        let beg = self.ptrs[l][node] as usize;
        let end = self.ptrs[l][node + 1] as usize;
        CsfNodeIter {
            idxs: &self.idxs[l + 1][beg..end],
            base: beg,
            pos: 0,
        }
    }

    /// `(start, end)` child positions of node `node` at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.order() - 1` or `node` is out of bounds.
    pub fn child_range(&self, l: usize, node: usize) -> (usize, usize) {
        (self.ptrs[l][node] as usize, self.ptrs[l][node + 1] as usize)
    }

    /// Expands back to COO (for correctness tests).
    pub fn to_coo(&self) -> CooTensor {
        let order = self.order();
        let mut entries = Vec::with_capacity(self.nnz());
        if order == 0 || self.nnz() == 0 {
            return CooTensor::from_entries(self.dims.clone(), entries).expect("empty is valid");
        }
        // Depth-first walk reconstructing full coordinates.
        let mut stack: Vec<(usize, usize, Vec<Idx>)> = (0..self.num_nodes(0))
            .rev()
            .map(|n| (0, n, vec![self.idxs[0][n]]))
            .collect();
        while let Some((l, node, coord)) = stack.pop() {
            if l == order - 1 {
                entries.push((coord, self.vals[node]));
            } else {
                let (beg, end) = self.child_range(l, node);
                for child in (beg..end).rev() {
                    let mut c = coord.clone();
                    c.push(self.idxs[l + 1][child]);
                    stack.push((l + 1, child, c));
                }
            }
        }
        CooTensor::from_entries(self.dims.clone(), entries).expect("CSF invariants hold")
    }

    /// Total storage in index words across all levels.
    pub fn index_words(&self) -> usize {
        self.ptrs.iter().map(Vec::len).sum::<usize>()
            + self.idxs.iter().map(Vec::len).sum::<usize>()
    }
}

/// Iterator over `(position, coordinate)` pairs of a CSF node's children.
///
/// Produced by [`CsfTensor::children`].
#[derive(Debug, Clone)]
pub struct CsfNodeIter<'a> {
    idxs: &'a [Idx],
    base: usize,
    pos: usize,
}

impl Iterator for CsfNodeIter<'_> {
    type Item = (usize, Idx);

    fn next(&mut self) -> Option<(usize, Idx)> {
        if self.pos < self.idxs.len() {
            let item = (self.base + self.pos, self.idxs[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.idxs.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CsfNodeIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tensor() -> CooTensor {
        CooTensor::from_entries(
            vec![3, 3, 3],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 2, 1], 3.0),
                (vec![2, 1, 0], 4.0),
                (vec![2, 1, 2], 5.0),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn structure_matches_hand_computation() {
        let csf = CsfTensor::from_coo(&small_tensor());
        // Level 0: distinct i coordinates {0, 2}
        assert_eq!(csf.idxs(0), &[0, 2]);
        // Node i=0 has j children {0, 2}; node i=2 has j child {1}
        assert_eq!(csf.ptrs(0), &[0, 2, 3]);
        assert_eq!(csf.idxs(1), &[0, 2, 1]);
        // j nodes have k children: (0,0)->{0,2}, (0,2)->{1}, (2,1)->{0,2}
        assert_eq!(csf.ptrs(1), &[0, 2, 3, 5]);
        assert_eq!(csf.idxs(2), &[0, 2, 1, 0, 2]);
        assert_eq!(csf.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn coo_roundtrip() {
        let coo = small_tensor();
        let back = CsfTensor::from_coo(&coo).to_coo();
        assert_eq!(coo, back);
    }

    #[test]
    fn children_iteration() {
        let csf = CsfTensor::from_coo(&small_tensor());
        let kids: Vec<_> = csf.children(0, 0).collect();
        assert_eq!(kids, vec![(0, 0), (1, 2)]);
        let leaf: Vec<_> = csf.children(1, 2).collect();
        assert_eq!(leaf, vec![(3, 0), (4, 2)]);
    }

    #[test]
    fn empty_tensor() {
        let coo = CooTensor::from_entries(vec![2, 2], vec![]).expect("valid");
        let csf = CsfTensor::from_coo(&coo);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.num_nodes(0), 0);
        assert_eq!(csf.to_coo(), coo);
    }

    #[test]
    fn order_two_matches_dcsr_shape() {
        // For matrices, CSF level counts must equal DCSR's stored rows.
        let coo2 = CooTensor::from_entries(
            vec![4, 4],
            vec![
                (vec![0, 0], 1.0),
                (vec![0, 2], 2.0),
                (vec![2, 1], 3.0),
                (vec![3, 0], 4.0),
                (vec![3, 3], 5.0),
            ],
        )
        .expect("valid");
        let csf = CsfTensor::from_coo(&coo2);
        assert_eq!(csf.idxs(0), &[0, 2, 3]);
        assert_eq!(csf.ptrs(0), &[0, 2, 3, 5]);
    }
}
