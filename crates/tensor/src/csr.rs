use crate::{CooMatrix, FormatError, Idx, Val};

/// A sparse matrix in Compressed Sparse Row (CSR) format (Figure 1b).
///
/// `row_ptrs[i]..row_ptrs[i+1]` delimits row `i`'s slice of the parallel
/// `col_idxs`/`vals` arrays. In the level-format abstraction CSR is a
/// *dense* level (rows) over a *compressed* level (columns).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptrs: Vec<Idx>,
    col_idxs: Vec<Idx>,
    vals: Vec<Val>,
}

impl CsrMatrix {
    /// Builds a CSR matrix directly from its constituent arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if `row_ptrs` has the wrong length or is not
    /// monotonically non-decreasing, if the index/value arrays mismatch, or
    /// if any column index is out of bounds or out of order within a row.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptrs: Vec<Idx>,
        col_idxs: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Result<Self, FormatError> {
        if row_ptrs.len() != rows + 1 {
            return Err(FormatError::LengthMismatch {
                what: "row_ptrs",
                expected: rows + 1,
                actual: row_ptrs.len(),
            });
        }
        if col_idxs.len() != vals.len() {
            return Err(FormatError::LengthMismatch {
                what: "col_idxs vs vals",
                expected: vals.len(),
                actual: col_idxs.len(),
            });
        }
        if *row_ptrs.last().expect("rows+1 > 0") as usize != vals.len() {
            return Err(FormatError::LengthMismatch {
                what: "row_ptrs terminal vs nnz",
                expected: vals.len(),
                actual: *row_ptrs.last().expect("rows+1 > 0") as usize,
            });
        }
        for w in row_ptrs.windows(2) {
            if w[0] > w[1] {
                return Err(FormatError::Unsorted { position: 0 });
            }
        }
        for i in 0..rows {
            let beg = row_ptrs[i] as usize;
            let end = row_ptrs[i + 1] as usize;
            for p in beg..end {
                if col_idxs[p] as usize >= cols {
                    return Err(FormatError::IndexOutOfBounds {
                        dim: 1,
                        index: col_idxs[p] as u64,
                        size: cols as u64,
                    });
                }
                if p > beg && col_idxs[p - 1] >= col_idxs[p] {
                    return Err(FormatError::Unsorted { position: p });
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptrs,
            col_idxs,
            vals,
        })
    }

    /// Converts a (sorted, deduplicated) COO matrix to CSR.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let mut row_ptrs = vec![0 as Idx; rows + 1];
        for &r in coo.row_idxs() {
            row_ptrs[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptrs[i + 1] += row_ptrs[i];
        }
        Self {
            rows,
            cols: coo.cols(),
            row_ptrs,
            col_idxs: coo.col_idxs().to_vec(),
            vals: coo.vals().to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptrs(&self) -> &[Idx] {
        &self.row_ptrs
    }

    /// Column index array.
    pub fn col_idxs(&self) -> &[Idx] {
        &self.col_idxs
    }

    /// Value array.
    pub fn vals(&self) -> &[Val] {
        &self.vals
    }

    /// Iterates `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> CsrRowIter<'_> {
        assert!(r < self.rows, "row out of bounds");
        let beg = self.row_ptrs[r] as usize;
        let end = self.row_ptrs[r + 1] as usize;
        CsrRowIter {
            cols: &self.col_idxs[beg..end],
            vals: &self.vals[beg..end],
            pos: 0,
        }
    }

    /// `(start, end)` positions of row `r` in the nnz arrays.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        assert!(r < self.rows, "row out of bounds");
        (self.row_ptrs[r] as usize, self.row_ptrs[r + 1] as usize)
    }

    /// Transposes the matrix (CSR of the transpose == CSC of self).
    pub fn transpose(&self) -> CsrMatrix {
        let mut ptrs = vec![0 as Idx; self.cols + 1];
        for &c in &self.col_idxs {
            ptrs[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            ptrs[i + 1] += ptrs[i];
        }
        let mut fill = ptrs.clone();
        let mut cols = vec![0 as Idx; self.nnz()];
        let mut vals = vec![0.0 as Val; self.nnz()];
        for r in 0..self.rows {
            let (beg, end) = self.row_range(r);
            for p in beg..end {
                let c = self.col_idxs[p] as usize;
                let q = fill[c] as usize;
                cols[q] = r as Idx;
                vals[q] = self.vals[p];
                fill[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptrs: ptrs,
            col_idxs: cols,
            vals,
        }
    }

    /// Converts to COO triplet form.
    pub fn to_coo(&self) -> CooMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                triplets.push((r as Idx, c, v));
            }
        }
        CooMatrix::from_triplets(self.rows, self.cols, triplets).expect("CSR invariants hold")
    }

    /// Lower triangle (strictly below the diagonal); used by TriangleCount.
    pub fn lower_triangle(&self) -> CsrMatrix {
        let mut triplets = Vec::new();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                if (c as usize) < r {
                    triplets.push((r as Idx, c, v));
                }
            }
        }
        let coo =
            CooMatrix::from_triplets(self.rows, self.cols, triplets).expect("subset of valid");
        CsrMatrix::from_coo(&coo)
    }

    /// Number of non-empty rows (DCSR conversion threshold of §2.2).
    pub fn nonempty_rows(&self) -> usize {
        (0..self.rows)
            .filter(|&r| self.row_ptrs[r] != self.row_ptrs[r + 1])
            .count()
    }
}

/// Iterator over the `(col, value)` pairs of a CSR row.
///
/// Produced by [`CsrMatrix::row`].
#[derive(Debug, Clone)]
pub struct CsrRowIter<'a> {
    cols: &'a [Idx],
    vals: &'a [Val],
    pos: usize,
}

impl Iterator for CsrRowIter<'_> {
    type Item = (Idx, Val);

    fn next(&mut self) -> Option<(Idx, Val)> {
        if self.pos < self.cols.len() {
            let item = (self.cols[self.pos], self.vals[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.cols.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CsrRowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_csr() -> CsrMatrix {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 1, 3.0),
                (3, 0, 4.0),
                (3, 3, 5.0),
            ],
        )
        .expect("valid");
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn figure1_row_ptrs_match_paper() {
        // Figure 1b: row_ptrs = [0, 2, 2, 3, 5]
        let m = figure1_csr();
        assert_eq!(m.row_ptrs(), &[0, 2, 2, 3, 5]);
        assert_eq!(m.col_idxs(), &[0, 2, 1, 0, 3]);
    }

    #[test]
    fn row_iteration() {
        let m = figure1_csr();
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(1).len(), 0);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(
            CsrMatrix::from_parts(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 2.0]).is_err(),
            "unsorted columns within a row must be rejected"
        );
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let m = figure1_csr();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = figure1_csr();
        let t = m.transpose();
        let row0: Vec<_> = t.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (3, 4.0)]);
    }

    #[test]
    fn coo_roundtrip() {
        let m = figure1_csr();
        assert_eq!(CsrMatrix::from_coo(&m.to_coo()), m);
    }

    #[test]
    fn lower_triangle_strict() {
        let m = figure1_csr();
        let l = m.lower_triangle();
        assert_eq!(l.nnz(), 2); // (2,1) and (3,0)
        assert_eq!(l.row(3).next(), Some((0, 4.0)));
    }

    #[test]
    fn nonempty_rows_counts() {
        let m = figure1_csr();
        assert_eq!(m.nonempty_rows(), 3);
    }
}
