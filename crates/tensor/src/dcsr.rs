use crate::{CooMatrix, CsrMatrix, Idx, Val};

/// A sparse matrix in Doubly-Compressed Sparse Row (DCSR) format (Figure 1c).
///
/// DCSR compresses away empty rows: `row_idxs` stores the indexes of the
/// non-empty rows and `row_ptrs` has one entry per *stored* row (plus a
/// terminator). In the level-format abstraction DCSR is two stacked
/// *compressed* levels. The paper's SpKAdd kernel operates on DCSR inputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DcsrMatrix {
    rows: usize,
    cols: usize,
    row_idxs: Vec<Idx>,
    row_ptrs: Vec<Idx>,
    col_idxs: Vec<Idx>,
    vals: Vec<Val>,
}

impl DcsrMatrix {
    /// Converts a CSR matrix to DCSR, dropping empty rows from the pointer
    /// structure.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let mut row_idxs = Vec::new();
        let mut row_ptrs = vec![0 as Idx];
        for r in 0..csr.rows() {
            let (beg, end) = csr.row_range(r);
            if beg != end {
                row_idxs.push(r as Idx);
                row_ptrs.push(end as Idx);
            }
        }
        Self {
            rows: csr.rows(),
            cols: csr.cols(),
            row_idxs,
            row_ptrs,
            col_idxs: csr.col_idxs().to_vec(),
            vals: csr.vals().to_vec(),
        }
    }

    /// Converts a COO matrix to DCSR.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        Self::from_csr(&CsrMatrix::from_coo(coo))
    }

    /// Logical number of rows (including empty ones).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of non-empty (stored) rows.
    pub fn num_stored_rows(&self) -> usize {
        self.row_idxs.len()
    }

    /// Indexes of the non-empty rows, sorted ascending.
    pub fn row_idxs(&self) -> &[Idx] {
        &self.row_idxs
    }

    /// Row pointer array over stored rows (`num_stored_rows + 1` entries).
    pub fn row_ptrs(&self) -> &[Idx] {
        &self.row_ptrs
    }

    /// Column index array.
    pub fn col_idxs(&self) -> &[Idx] {
        &self.col_idxs
    }

    /// Value array.
    pub fn vals(&self) -> &[Val] {
        &self.vals
    }

    /// Iterates `(logical_row, col, value)` over the `s`-th stored row.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.num_stored_rows()`.
    pub fn stored_row(&self, s: usize) -> (Idx, &[Idx], &[Val]) {
        assert!(s < self.num_stored_rows(), "stored row out of bounds");
        let beg = self.row_ptrs[s] as usize;
        let end = self.row_ptrs[s + 1] as usize;
        (
            self.row_idxs[s],
            &self.col_idxs[beg..end],
            &self.vals[beg..end],
        )
    }

    /// Expands back to CSR (re-inserting empty rows).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for s in 0..self.num_stored_rows() {
            let (r, cols, vals) = self.stored_row(s);
            for (c, v) in cols.iter().zip(vals) {
                triplets.push((r, *c, *v));
            }
        }
        let coo =
            CooMatrix::from_triplets(self.rows, self.cols, triplets).expect("DCSR invariants hold");
        CsrMatrix::from_coo(&coo)
    }

    /// Storage in index words, for the `#rows > 2 × #nonempty` rule of §2.2.
    pub fn index_words(&self) -> usize {
        self.row_idxs.len() + self.row_ptrs.len() + self.col_idxs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_dcsr() -> DcsrMatrix {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 1, 3.0),
                (3, 0, 4.0),
                (3, 3, 5.0),
            ],
        )
        .expect("valid");
        DcsrMatrix::from_coo(&coo)
    }

    #[test]
    fn figure1_compresses_empty_row() {
        // Figure 1c: row_idxs = [0,2,3], row_ptrs = [0,2,3,5]
        let m = figure1_dcsr();
        assert_eq!(m.row_idxs(), &[0, 2, 3]);
        assert_eq!(m.row_ptrs(), &[0, 2, 3, 5]);
        assert_eq!(m.num_stored_rows(), 3);
    }

    #[test]
    fn stored_row_access() {
        let m = figure1_dcsr();
        let (r, cols, vals) = m.stored_row(1);
        assert_eq!(r, 2);
        assert_eq!(cols, &[1]);
        assert_eq!(vals, &[3.0]);
    }

    #[test]
    fn csr_roundtrip() {
        let m = figure1_dcsr();
        let back = DcsrMatrix::from_csr(&m.to_csr());
        assert_eq!(m, back);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::from_triplets(3, 3, vec![]).expect("valid");
        let m = DcsrMatrix::from_coo(&coo);
        assert_eq!(m.num_stored_rows(), 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_ptrs(), &[0]);
    }
}
