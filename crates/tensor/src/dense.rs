use crate::{FormatError, Idx, Val};

/// A dense vector of [`Val`] elements.
///
/// Thin wrapper around `Vec<Val>` that gives dense operands the same
/// vocabulary as the sparse formats (`len`, `as_slice`, …) and documents the
/// role the data plays in a kernel (e.g. the right-hand side of SpMV).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseVector {
    data: Vec<Val>,
}

impl DenseVector {
    /// Creates a zero-filled vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector from existing data.
    pub fn from_vec(data: Vec<Val>) -> Self {
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage.
    pub fn as_slice(&self) -> &[Val] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [Val] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<Val> {
        self.data
    }

    /// Sum of all elements (used by tests and PageRank normalization).
    pub fn sum(&self) -> Val {
        self.data.iter().sum()
    }

    /// Maximum absolute difference against another vector.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn max_abs_diff(&self, other: &DenseVector) -> Val {
        assert_eq!(self.len(), other.len(), "vector length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, Val::max)
    }
}

impl std::ops::Index<usize> for DenseVector {
    type Output = Val;

    fn index(&self, i: usize) -> &Val {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for DenseVector {
    fn index_mut(&mut self, i: usize) -> &mut Val {
        &mut self.data[i]
    }
}

impl From<Vec<Val>> for DenseVector {
    fn from(data: Vec<Val>) -> Self {
        Self { data }
    }
}

impl FromIterator<Val> for DenseVector {
    fn from_iter<I: IntoIterator<Item = Val>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

/// A dense row-major matrix.
///
/// Used for the dense factor matrices of MTTKRP/CP-ALS and as the dense side
/// of mixed sparse-dense kernels (SpMM, SpTTM).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Val>,
}

impl DenseMatrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<Val>) -> Result<Self, FormatError> {
        if data.len() != rows * cols {
            return Err(FormatError::LengthMismatch {
                what: "row-major dense matrix data",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn at(&self, r: usize, c: usize) -> Val {
        assert!(r < self.rows && c < self.cols, "dense index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable reference to the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Val {
        assert!(r < self.rows && c < self.cols, "dense index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Read-only view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[Val] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [Val] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Read-only view of the row-major storage.
    pub fn as_slice(&self) -> &[Val] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [Val] {
        &mut self.data
    }

    /// Maximum absolute element-wise difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Val {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, Val::max)
    }
}

/// An order-*n* dense tensor in row-major (last dimension fastest) layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseTensor {
    dims: Vec<usize>,
    data: Vec<Val>,
}

impl DenseTensor {
    /// Creates a zero-filled tensor with the given dimensions.
    pub fn zeros(dims: &[usize]) -> Self {
        let n: usize = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor stores no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear offset of a coordinate tuple.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate rank or any index is out of bounds.
    pub fn offset(&self, coord: &[Idx]) -> usize {
        assert_eq!(coord.len(), self.dims.len(), "coordinate rank mismatch");
        let mut off = 0usize;
        for (d, (&c, &size)) in coord.iter().zip(&self.dims).enumerate() {
            assert!((c as usize) < size, "index out of bounds in dim {d}");
            off = off * size + c as usize;
        }
        off
    }

    /// Element at the given coordinates.
    pub fn at(&self, coord: &[Idx]) -> Val {
        self.data[self.offset(coord)]
    }

    /// Mutable reference to the element at the given coordinates.
    pub fn at_mut(&mut self, coord: &[Idx]) -> &mut Val {
        let off = self.offset(coord);
        &mut self.data[off]
    }

    /// Read-only view of the row-major storage.
    pub fn as_slice(&self) -> &[Val] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [Val] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_roundtrip() {
        let v = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.sum(), 6.0);
        assert_eq!(v.clone().into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn vector_max_abs_diff() {
        let a = DenseVector::from_vec(vec![1.0, 2.0]);
        let b = DenseVector::from_vec(vec![1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn matrix_indexing_row_major() {
        let mut m = DenseMatrix::zeros(2, 3);
        *m.at_mut(1, 2) = 7.0;
        assert_eq!(m.at(1, 2), 7.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
        assert_eq!(m.as_slice()[5], 7.0);
    }

    #[test]
    fn matrix_from_row_major_validates_length() {
        let err = DenseMatrix::from_row_major(2, 2, vec![1.0]).unwrap_err();
        assert!(matches!(err, FormatError::LengthMismatch { .. }));
    }

    #[test]
    fn tensor_offset_is_row_major() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 1]), 1);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.len(), 24);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn tensor_offset_bounds_checked() {
        let t = DenseTensor::zeros(&[2, 2]);
        t.offset(&[0, 2]);
    }

    #[test]
    fn tensor_at_mut_roundtrip() {
        let mut t = DenseTensor::zeros(&[3, 3]);
        *t.at_mut(&[2, 1]) = 5.0;
        assert_eq!(t.at(&[2, 1]), 5.0);
    }
}
