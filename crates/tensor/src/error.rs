use std::error::Error;
use std::fmt;

/// Error produced when constructing or converting a tensor format from
/// inconsistent input data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// A coordinate lies outside the declared tensor dimensions.
    IndexOutOfBounds {
        /// Dimension (mode) in which the violation occurred.
        dim: usize,
        /// Offending index value.
        index: u64,
        /// Size of that dimension.
        size: u64,
    },
    /// Parallel arrays (e.g. indices and values) have mismatched lengths.
    LengthMismatch {
        /// What the arrays describe.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Coordinates were required to be sorted (and unique) but are not.
    Unsorted {
        /// Position of the first out-of-order element.
        position: usize,
    },
    /// The rank of a coordinate tuple does not match the tensor order.
    RankMismatch {
        /// Expected tensor order.
        expected: usize,
        /// Provided coordinate rank.
        actual: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::IndexOutOfBounds { dim, index, size } => write!(
                f,
                "index {index} out of bounds for dimension {dim} of size {size}"
            ),
            FormatError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "length mismatch for {what}: expected {expected}, got {actual}"
            ),
            FormatError::Unsorted { position } => {
                write!(f, "coordinates not sorted at position {position}")
            }
            FormatError::RankMismatch { expected, actual } => {
                write!(
                    f,
                    "coordinate rank {actual} does not match tensor order {expected}"
                )
            }
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = FormatError::IndexOutOfBounds {
            dim: 1,
            index: 9,
            size: 4,
        };
        let msg = err.to_string();
        assert!(msg.starts_with("index 9"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatError>();
    }
}
