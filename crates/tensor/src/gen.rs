//! Synthetic input generators replicating the paper's evaluation inputs
//! (Table 6) at simulation-tractable scale.
//!
//! The paper evaluates on six SuiteSparse matrices (M1–M6) and four FROSTT
//! tensors (T1–T4). Those files are not redistributable here and are too
//! large for a from-scratch cycle simulator, so each input is replaced by a
//! deterministic generator matching the *structural statistics* that drive
//! kernel behaviour: rows, nnz-per-row average and skew, and column
//! locality (banded / stencil / power-law / road-network). See DESIGN.md §2
//! for the substitution argument.
//!
//! All generators take an explicit seed and are fully deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{CooMatrix, CooTensor, CsrMatrix, Idx, Val};

/// Default scale factor applied to the paper's input sizes (rows and nnz are
/// divided by roughly this factor, preserving nnz/row).
pub const DEFAULT_SCALE_DIVISOR: usize = 32;

fn value_for(rng: &mut SmallRng) -> Val {
    // Uniform in [0.5, 1.5): keeps reductions well-conditioned so that
    // baseline/TMU correctness comparisons are not dominated by cancellation.
    0.5 + rng.gen::<Val>()
}

/// Generates a matrix with `nnz_per_row` uniformly random column positions
/// per row.
pub fn uniform(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(rows * nnz_per_row);
    for r in 0..rows {
        let mut taken = std::collections::BTreeSet::new();
        while taken.len() < nnz_per_row.min(cols) {
            taken.insert(rng.gen_range(0..cols) as Idx);
        }
        for c in taken {
            triplets.push((r as Idx, c, value_for(&mut rng)));
        }
    }
    let coo = CooMatrix::from_triplets(rows, cols, triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates a banded matrix: each row has `nnz_per_row` entries drawn from
/// a window of `bandwidth` columns centred on the diagonal. Models the
/// structural-mechanics inputs (M1 `af_0_k101`, M5 `halfb`): high spatial
/// locality, regular row lengths.
pub fn banded(rows: usize, bandwidth: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(rows * nnz_per_row);
    for r in 0..rows {
        let lo = r.saturating_sub(bandwidth / 2);
        let hi = (r + bandwidth / 2 + 1).min(rows);
        let mut taken = std::collections::BTreeSet::new();
        taken.insert(r as Idx); // keep the diagonal
        while taken.len() < nnz_per_row.min(hi - lo) {
            taken.insert(rng.gen_range(lo..hi) as Idx);
        }
        for c in taken {
            triplets.push((r as Idx, c, value_for(&mut rng)));
        }
    }
    let coo = CooMatrix::from_triplets(rows, rows, triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates a 3-D finite-difference stencil matrix on an
/// `nx × ny × nz` grid (7-point stencil). Models the fluid-dynamics input
/// (M2 `atmosmodm`): perfectly regular ~7 nnz/row at fixed offsets.
pub fn stencil7(nx: usize, ny: usize, nz: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = nx * ny * nz;
    let at = |x: usize, y: usize, z: usize| (x * ny + y) * nz + z;
    let mut triplets = Vec::with_capacity(n * 7);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                let r = at(x, y, z) as Idx;
                let mut push = |c: usize| {
                    triplets.push((r, c as Idx, value_for(&mut rng)));
                };
                push(at(x, y, z));
                if x > 0 {
                    push(at(x - 1, y, z));
                }
                if x + 1 < nx {
                    push(at(x + 1, y, z));
                }
                if y > 0 {
                    push(at(x, y - 1, z));
                }
                if y + 1 < ny {
                    push(at(x, y + 1, z));
                }
                if z > 0 {
                    push(at(x, y, z - 1));
                }
                if z + 1 < nz {
                    push(at(x, y, z + 1));
                }
            }
        }
    }
    let coo = CooMatrix::from_triplets(n, n, triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates an RMAT (Kronecker) power-law graph adjacency matrix with
/// `2^scale` vertices and `edges` edges. Models circuit/semiconductor
/// inputs (M3 `Freescale1`, M6 `test1`) and graph workload inputs: skewed
/// row lengths, poor column locality.
pub fn rmat(scale: u32, edges: usize, seed: u64) -> CsrMatrix {
    let (a, b, c) = (0.57, 0.19, 0.19);
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (mut r, mut cidx) = (0usize, 0usize);
        for _ in 0..scale {
            let p: f64 = rng.gen();
            let (rbit, cbit) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r = (r << 1) | rbit;
            cidx = (cidx << 1) | cbit;
        }
        triplets.push((r as Idx, cidx as Idx, value_for(&mut rng)));
    }
    let coo = CooMatrix::from_triplets(n, n, triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates a circuit-netlist-like matrix: ~`avg_deg` entries per row of
/// which most are near-diagonal (local cells), a minority are uniform
/// long-range nets, and a small set of hub columns (power/clock rails)
/// appears in many rows. Models circuit-simulation inputs (M3
/// `Freescale1`): skewed column popularity, mostly-local structure, very
/// sparse rows.
pub fn circuit(rows: usize, avg_deg: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_hubs = (rows / 1024).max(1);
    let hubs: Vec<Idx> = (0..n_hubs).map(|_| rng.gen_range(0..rows) as Idx).collect();
    let mut triplets = Vec::with_capacity(rows * avg_deg);
    for r in 0..rows {
        let mut taken = std::collections::BTreeSet::new();
        taken.insert(r as Idx); // diagonal (device self-term)
                                // Local couplings.
        for _ in 0..avg_deg.saturating_sub(2) {
            let off = rng.gen_range(-24i64..=24);
            let c = (r as i64 + off).clamp(0, rows as i64 - 1) as Idx;
            taken.insert(c);
        }
        // Occasional long-range net.
        if rng.gen_bool(0.3) {
            taken.insert(rng.gen_range(0..rows) as Idx);
        }
        // Occasional rail connection.
        if rng.gen_bool(0.1) {
            taken.insert(hubs[rng.gen_range(0..n_hubs)]);
        }
        for c in taken {
            triplets.push((r as Idx, c, value_for(&mut rng)));
        }
    }
    let coo = CooMatrix::from_triplets(rows, rows, triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates a road-network-like matrix: ~`avg_degree` entries per row, all
/// close to the diagonal (spatially embedded graph). Models M4 (`gb_osm`):
/// very sparse rows, short fibers, traversal dominated by loop overhead.
pub fn road(rows: usize, avg_degree: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for r in 0..rows {
        let deg = 1 + rng.gen_range(0..=(2 * avg_degree).saturating_sub(1));
        let mut taken = std::collections::BTreeSet::new();
        for _ in 0..deg {
            // Neighbours within a small window, like OSM node ids.
            let span = 64i64;
            let off = rng.gen_range(-span..=span);
            let c = (r as i64 + off).clamp(0, rows as i64 - 1) as Idx;
            taken.insert(c);
        }
        for c in taken {
            triplets.push((r as Idx, c, value_for(&mut rng)));
        }
    }
    let coo = CooMatrix::from_triplets(rows, rows, triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates the Fig. 12c ceiling matrices: every row has exactly `n`
/// non-zeros located at column indexes `0..n-1` — ideal spatio-temporal
/// locality, fixed arithmetic intensity.
pub fn fixed_row(rows: usize, n: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(rows * n);
    for r in 0..rows {
        for c in 0..n {
            triplets.push((r as Idx, c as Idx, value_for(&mut rng)));
        }
    }
    let coo = CooMatrix::from_triplets(rows, rows.max(n), triplets).expect("generated in bounds");
    CsrMatrix::from_coo(&coo)
}

/// Generates a random sparse tensor with the given dimensions and `nnz`
/// distinct coordinates. Mode-0 coordinates follow a mild power law (as in
/// real event data) while the remaining modes are uniform.
pub fn random_tensor(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(nnz);
    let mut seen = std::collections::HashSet::with_capacity(nnz);
    let mut guard = 0usize;
    while entries.len() < nnz && guard < nnz * 20 {
        guard += 1;
        let coord: Vec<Idx> = dims
            .iter()
            .enumerate()
            .map(|(d, &size)| {
                if d == 0 {
                    // Squared-uniform: concentrates mass on low indexes.
                    let u: f64 = rng.gen();
                    ((u * u * size as f64) as usize).min(size - 1) as Idx
                } else {
                    rng.gen_range(0..size) as Idx
                }
            })
            .collect();
        if seen.insert(coord.clone()) {
            entries.push((coord, value_for(&mut rng)));
        }
    }
    CooTensor::from_entries(dims.to_vec(), entries).expect("generated in bounds")
}

/// Identifier of a Table 6 input (matrix M1–M6 or tensor T1–T4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum InputId {
    M1,
    M2,
    M3,
    M4,
    M5,
    M6,
    T1,
    T2,
    T3,
    T4,
}

impl InputId {
    /// All matrix inputs, in Table 6 order.
    pub const MATRICES: [InputId; 6] = [
        InputId::M1,
        InputId::M2,
        InputId::M3,
        InputId::M4,
        InputId::M5,
        InputId::M6,
    ];

    /// All tensor inputs, in Table 6 order.
    pub const TENSORS: [InputId; 4] = [InputId::T1, InputId::T2, InputId::T3, InputId::T4];

    /// The SuiteSparse / FROSTT name this input stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            InputId::M1 => "af_0_k101",
            InputId::M2 => "atmosmodm",
            InputId::M3 => "Freescale1",
            InputId::M4 => "gb_osm",
            InputId::M5 => "halfb",
            InputId::M6 => "test1",
            InputId::T1 => "Chicago-crime",
            InputId::T2 => "LBNL-network",
            InputId::T3 => "NIPS pubs",
            InputId::T4 => "Uber pickups",
        }
    }

    /// Application domain per Table 6.
    pub fn domain(self) -> &'static str {
        match self {
            InputId::M1 => "structural",
            InputId::M2 => "fluid dynamics",
            InputId::M3 => "circuit simulation",
            InputId::M4 => "street network",
            InputId::M5 => "structural",
            InputId::M6 => "semiconductor",
            InputId::T1 => "crime counts",
            InputId::T2 => "network traffic",
            InputId::T3 => "text",
            InputId::T4 => "map",
        }
    }

    /// Short display label ("M1", "T3", …).
    pub fn label(self) -> &'static str {
        match self {
            InputId::M1 => "M1",
            InputId::M2 => "M2",
            InputId::M3 => "M3",
            InputId::M4 => "M4",
            InputId::M5 => "M5",
            InputId::M6 => "M6",
            InputId::T1 => "T1",
            InputId::T2 => "T2",
            InputId::T3 => "T3",
            InputId::T4 => "T4",
        }
    }
}

/// A Table 6 input at reduced scale.
///
/// `scale` divides the paper's row counts (and nnz proportionally) while
/// preserving nnz/row; `scale = 1.0` is the repository default
/// (≈[`DEFAULT_SCALE_DIVISOR`]× smaller than the paper's files), values
/// below 1.0 shrink the input further (used by the quick criterion benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledInput {
    /// Which Table 6 input this is.
    pub id: InputId,
    /// Additional scale multiplier on top of the default reduction.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScaledInput {
    /// Creates a descriptor for `id` at the default scale.
    pub fn new(id: InputId) -> Self {
        Self {
            id,
            scale: 1.0,
            seed: 0xD15EA5E,
        }
    }

    /// Adjusts the scale multiplier.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    fn sz(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(64)
    }

    /// Builds the matrix for M1–M6.
    ///
    /// # Panics
    ///
    /// Panics if called on a tensor input (T1–T4).
    pub fn matrix(&self) -> CsrMatrix {
        match self.id {
            // af_0_k101: 504K rows, ~35 nnz/row, structural banded.
            InputId::M1 => banded(self.sz(15_744), 512, 35, self.seed),
            // atmosmodm: 1.5M rows, ~7 nnz/row, 3-D stencil.
            InputId::M2 => {
                let side = ((self.sz(46_875) as f64).cbrt().round() as usize).max(4);
                stencil7(side, side, side, self.seed)
            }
            // Freescale1: 3.4M rows, ~5 nnz/row, circuit netlist: mostly
            // local connections plus sparse long-range nets and a few
            // high-degree hubs (power/clock rails).
            InputId::M3 => circuit(self.sz(106_000), 5, self.seed),
            // gb_osm: 7.7M rows, ~2 nnz/row, road network.
            InputId::M4 => road(self.sz(65_536), 2, self.seed),
            // halfb: 225K rows, ~55 nnz/row, structural banded (dense rows).
            InputId::M5 => banded(self.sz(7_040), 1024, 55, self.seed),
            // test1: 393K rows, ~24 nnz/row, semiconductor (mixed).
            InputId::M6 => uniform(self.sz(12_288), self.sz(12_288), 24, self.seed),
            other => panic!("input {other:?} is a tensor, not a matrix"),
        }
    }

    /// Builds the tensor for T1–T4.
    ///
    /// # Panics
    ///
    /// Panics if called on a matrix input (M1–M6).
    pub fn tensor(&self) -> CooTensor {
        match self.id {
            // Chicago-crime: 6K × 24 × 77 × 32, 5M nnz.
            InputId::T1 => random_tensor(
                &[self.sz(6_186).min(6_186), 24, 77, 32],
                self.sz(156_000),
                self.seed,
            ),
            // LBNL-network: 2K × 4K × 2K × 4K, 2M nnz.
            InputId::T2 => random_tensor(&[1_605, 4_198, 1_631, 4_198], self.sz(62_000), self.seed),
            // NIPS pubs: 3K × 3K × 14K × 17, 3M nnz.
            InputId::T3 => random_tensor(
                &[2_482, 2_862, self.sz(14_036).min(14_036), 17],
                self.sz(97_000),
                self.seed,
            ),
            // Uber pickups: 183 × 24 × 1140 × 1717, 3M nnz.
            InputId::T4 => random_tensor(&[183, 24, 1_140, 1_717], self.sz(103_000), self.seed),
            other => panic!("input {other:?} is a matrix, not a tensor"),
        }
    }

    /// Whether this is a matrix input.
    pub fn is_matrix(&self) -> bool {
        matches!(
            self.id,
            InputId::M1 | InputId::M2 | InputId::M3 | InputId::M4 | InputId::M5 | InputId::M6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(64, 64, 4, 7);
        let b = uniform(64, 64, 4, 7);
        assert_eq!(a, b);
        let c = uniform(64, 64, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn banded_stays_in_band() {
        let m = banded(256, 32, 8, 1);
        for r in 0..m.rows() {
            for (c, _) in m.row(r) {
                assert!((c as i64 - r as i64).unsigned_abs() <= 16 + 1);
            }
        }
    }

    #[test]
    fn stencil_has_seven_point_rows() {
        let m = stencil7(6, 6, 6, 1);
        assert_eq!(m.rows(), 216);
        // Interior points have exactly 7 entries.
        let interior = (6 + 1) * 6 + 1;
        assert_eq!(m.row(interior).count(), 7);
        // nnz/row averages just under 7.
        let avg = m.nnz() as f64 / m.rows() as f64;
        assert!(avg > 5.5 && avg <= 7.0, "avg = {avg}");
    }

    #[test]
    fn rmat_is_skewed() {
        let m = rmat(10, 8192, 3);
        let lens: Vec<usize> = (0..m.rows()).map(|r| m.row(r).count()).collect();
        let max = *lens.iter().max().expect("non-empty");
        let avg = m.nnz() as f64 / m.rows() as f64;
        assert!(
            max as f64 > 4.0 * avg,
            "power-law graphs must have heavy rows (max {max}, avg {avg})"
        );
    }

    #[test]
    fn road_is_very_sparse_and_local() {
        let m = road(4096, 2, 5);
        let avg = m.nnz() as f64 / m.rows() as f64;
        assert!(avg < 4.0, "avg = {avg}");
        for (c, _) in m.row(2048) {
            assert!((c as i64 - 2048).unsigned_abs() <= 64);
        }
    }

    #[test]
    fn fixed_row_matches_fig12c_spec() {
        let m = fixed_row(128, 8, 0);
        for r in 0..m.rows() {
            let cols: Vec<_> = m.row(r).map(|(c, _)| c).collect();
            assert_eq!(cols, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_tensor_has_unique_sorted_coords() {
        let t = random_tensor(&[32, 16, 8], 256, 11);
        assert_eq!(t.nnz(), 256);
        for p in 1..t.nnz() {
            assert!(t.coord(p - 1) < t.coord(p));
        }
    }

    #[test]
    fn scaled_inputs_build() {
        for id in InputId::MATRICES {
            let m = ScaledInput::new(id).with_scale(0.05).matrix();
            assert!(m.nnz() > 0, "{id:?} empty");
        }
        for id in InputId::TENSORS {
            let t = ScaledInput::new(id).with_scale(0.05).tensor();
            assert!(t.nnz() > 0, "{id:?} empty");
        }
    }

    #[test]
    fn scaled_matrix_preserves_nnz_per_row() {
        let m1 = ScaledInput::new(InputId::M1).with_scale(0.1).matrix();
        let avg = m1.nnz() as f64 / m1.rows() as f64;
        assert!((avg - 35.0).abs() < 3.0, "M1 nnz/row = {avg}, want ≈35");
        let m4 = ScaledInput::new(InputId::M4).with_scale(0.1).matrix();
        let avg4 = m4.nnz() as f64 / m4.rows() as f64;
        assert!(avg4 < 4.0, "M4 nnz/row = {avg4}, want ≈2");
    }
}
