//! Plain-text tensor I/O: Matrix Market (`.mtx`) matrices and
//! FROSTT-style (`.tns`) coordinate tensors.
//!
//! The paper evaluates on SuiteSparse matrices (distributed as Matrix
//! Market files) and FROSTT tensors (distributed as `.tns` coordinate
//! lists). This repository substitutes synthetic generators for the
//! evaluation itself (see `DESIGN.md`), but downstream users can load the
//! real files with these readers and run any workload on them.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{CooMatrix, CooTensor, FormatError, Idx, Val};

/// Error produced while parsing a tensor file.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structurally invalid tensor data.
    Format(FormatError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<FormatError> for IoError {
    fn from(e: FormatError) -> Self {
        IoError::Format(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads a Matrix Market `coordinate` matrix (`%%MatrixMarket matrix
/// coordinate real|integer|pattern general|symmetric`).
///
/// Pattern entries get value 1.0; symmetric matrices are expanded.
///
/// # Errors
///
/// Returns [`IoError`] on malformed headers, counts, or entries.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix, IoError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    // Header.
    let (_, header) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty file"))
        .and_then(|(n, l)| Ok((n, l?)))?;
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket matrix coordinate") {
        return Err(parse_err(
            1,
            "expected '%%MatrixMarket matrix coordinate …'",
        ));
    }
    let pattern = head.contains("pattern");
    let symmetric = head.contains("symmetric");

    // Skip comments, read the size line.
    let mut size_line = None;
    for item in lines.by_ref() {
        let (n, line) = item;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some((n + 1, trimmed.to_owned()));
        break;
    }
    let (size_ln, size_line) = size_line.ok_or_else(|| parse_err(1, "missing size line"))?;
    let mut it = size_line.split_whitespace();
    let rows: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(size_ln, "bad row count"))?;
    let cols: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(size_ln, "bad column count"))?;
    let nnz: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(size_ln, "bad nnz count"))?;

    let mut triplets = Vec::with_capacity(if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for item in lines {
        let (n, line) = item;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(n + 1, "bad row index"))?;
        let c: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(n + 1, "bad column index"))?;
        let v: Val = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(n + 1, "bad value"))?
        };
        if r == 0 || c == 0 {
            return Err(parse_err(n + 1, "matrix market indices are 1-based"));
        }
        triplets.push(((r - 1) as Idx, (c - 1) as Idx, v));
        if symmetric && r != c {
            triplets.push(((c - 1) as Idx, (r - 1) as Idx, v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            format!("entry count mismatch: header says {nnz}, file has {seen}"),
        ));
    }
    Ok(CooMatrix::from_triplets(rows, cols, triplets)?)
}

/// Writes a matrix as Matrix Market `coordinate real general`.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_matrix_market<W: Write>(mut writer: W, m: &CooMatrix) -> Result<(), IoError> {
    let mut out = String::new();
    let _ = writeln!(out, "%%MatrixMarket matrix coordinate real general");
    let _ = writeln!(out, "{} {} {}", m.rows(), m.cols(), m.nnz());
    for (r, c, v) in m.iter() {
        let _ = writeln!(out, "{} {} {v}", r + 1, c + 1);
    }
    writer.write_all(out.as_bytes())?;
    Ok(())
}

/// Reads a FROSTT-style `.tns` coordinate tensor: one line per non-zero,
/// `i1 i2 … iN value`, 1-based indices, `#` comments.
///
/// Dimensions are inferred as the per-mode maxima.
///
/// # Errors
///
/// Returns [`IoError`] on ragged or malformed lines.
pub fn read_tns<R: Read>(reader: R) -> Result<CooTensor, IoError> {
    let mut entries: Vec<(Vec<Idx>, Val)> = Vec::new();
    let mut order: Option<usize> = None;
    for (n, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(parse_err(n + 1, "need at least one index and a value"));
        }
        let this_order = toks.len() - 1;
        match order {
            None => order = Some(this_order),
            Some(o) if o != this_order => {
                return Err(parse_err(
                    n + 1,
                    format!("ragged entry: {this_order} vs {o} modes"),
                ))
            }
            _ => {}
        }
        let mut coord = Vec::with_capacity(this_order);
        for t in &toks[..this_order] {
            let i: usize = t
                .parse()
                .map_err(|_| parse_err(n + 1, format!("bad index '{t}'")))?;
            if i == 0 {
                return Err(parse_err(n + 1, ".tns indices are 1-based"));
            }
            coord.push((i - 1) as Idx);
        }
        let v: Val = toks[this_order]
            .parse()
            .map_err(|_| parse_err(n + 1, format!("bad value '{}'", toks[this_order])))?;
        entries.push((coord, v));
    }
    let order = order.unwrap_or(0);
    let mut dims = vec![1usize; order];
    for (c, _) in &entries {
        for (d, &i) in c.iter().enumerate() {
            dims[d] = dims[d].max(i as usize + 1);
        }
    }
    Ok(CooTensor::from_entries(dims, entries)?)
}

/// Writes a tensor in FROSTT `.tns` format (1-based indices).
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_tns<W: Write>(mut writer: W, t: &CooTensor) -> Result<(), IoError> {
    let mut out = String::new();
    for (coord, v) in t.iter() {
        for c in &coord {
            let _ = write!(out, "{} ", c + 1);
        }
        let _ = writeln!(out, "{v}");
    }
    writer.write_all(out.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_roundtrip() {
        let m = crate::gen::uniform(32, 24, 3, 5);
        let coo = m.to_coo();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &coo).expect("write");
        let back = read_matrix_market(&buf[..]).expect("read");
        assert_eq!(back, coo);
    }

    #[test]
    fn matrix_market_symmetric_expansion() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n% c\n3 3 2\n2 1 5.0\n3 3 7.0\n";
        let m = read_matrix_market(text.as_bytes()).expect("read");
        assert_eq!(m.nnz(), 3); // (1,0), (0,1), (2,2)
        let d = m.to_dense();
        assert_eq!(d[0][1], 5.0);
        assert_eq!(d[1][0], 5.0);
        assert_eq!(d[2][2], 7.0);
    }

    #[test]
    fn matrix_market_pattern_defaults_to_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let m = read_matrix_market(text.as_bytes()).expect("read");
        assert_eq!(m.vals(), &[1.0]);
    }

    #[test]
    fn matrix_market_rejects_bad_header() {
        let text = "%%MatrixMarket matrix array real general\n2 2 0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_detects_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn tns_roundtrip() {
        let t = crate::gen::random_tensor(&[8, 6, 4], 32, 7);
        let mut buf = Vec::new();
        write_tns(&mut buf, &t).expect("write");
        let back = read_tns(&buf[..]).expect("read");
        assert_eq!(back.nnz(), t.nnz());
        assert_eq!(back.vals(), t.vals());
        // Dims are inferred as maxima, so they may shrink but never grow.
        for (a, b) in back.dims().iter().zip(t.dims()) {
            assert!(a <= b);
        }
    }

    #[test]
    fn tns_rejects_ragged_lines() {
        let text = "1 2 3 1.0\n1 2 1.0\n";
        assert!(read_tns(text.as_bytes()).is_err());
    }

    #[test]
    fn tns_skips_comments() {
        let text = "# a comment\n1 1 2.5\n2 2 3.5\n";
        let t = read_tns(text.as_bytes()).expect("read");
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.dims(), &[2, 2]);
    }
}
