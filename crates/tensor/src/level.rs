//! The hierarchical *level format* abstraction of Chou et al. (§2.2).
//!
//! Every tensor compression format is a stack of per-dimension level
//! formats: CSR = dense ∘ compressed, DCSR = compressed ∘ compressed,
//! COO = singleton^n, CSF = compressed^n. The TMU's traversal primitives
//! (Table 1) are exactly the level functions of §2.3, so this module is the
//! vocabulary used to prove the engine *tensor-format complete*: any stack
//! of these levels can be traversed by composing TMU layers.

use crate::{CooMatrix, CsfTensor, CsrMatrix, DcsrMatrix};

/// A single level of a hierarchical tensor format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LevelFormat {
    /// All `size` coordinates are materialized; traversed with a plain
    /// counted loop (TMU `DnsFbrT`).
    Dense {
        /// Dimension size.
        size: usize,
    },
    /// Only non-empty coordinates are stored behind a pointer pair;
    /// traversed with a pointer-delimited loop (TMU `RngFbrT`).
    Compressed,
    /// One coordinate per parent position, no pointer structure (COO
    /// levels); traversed alongside the parent (TMU `DnsFbrT` over
    /// positions + a `mem` stream per singleton level).
    Singleton,
    /// Non-empty coordinates stored as narrow deltas from a per-parent
    /// band origin behind a pointer pair (diagonal/stencil matrices);
    /// traversed like [`LevelFormat::Compressed`] with an affine
    /// coordinate decode (`tmu-formats` banded level).
    Banded,
    /// Non-empty coordinates stored in a per-parent open-addressing
    /// table; position order is *not* coordinate order, so ordered
    /// traversal goes through a sorted canonical materialization
    /// (`tmu-formats` hashed level).
    Hashed,
    /// Coordinates grouped into dense sub-blocks behind a block pointer
    /// pair (BCSR); traversed per stored block with an occupancy mask
    /// (`tmu-formats` blocked level over `BcsrMatrix`).
    Blocked,
}

impl LevelFormat {
    /// Whether traversing this level needs a data-dependent loop bound.
    pub fn is_data_dependent(self) -> bool {
        matches!(
            self,
            LevelFormat::Compressed
                | LevelFormat::Banded
                | LevelFormat::Hashed
                | LevelFormat::Blocked
        )
    }
}

/// A complete format: one level per tensor dimension, root first.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FormatDescriptor {
    levels: Vec<LevelFormat>,
}

impl FormatDescriptor {
    /// Builds a descriptor from a level stack.
    pub fn new(levels: Vec<LevelFormat>) -> Self {
        Self { levels }
    }

    /// The level stack, root first.
    pub fn levels(&self) -> &[LevelFormat] {
        &self.levels
    }

    /// Tensor order described by this format.
    pub fn order(&self) -> usize {
        self.levels.len()
    }

    /// Descriptor for CSR: dense rows over compressed columns.
    pub fn csr(rows: usize) -> Self {
        Self::new(vec![
            LevelFormat::Dense { size: rows },
            LevelFormat::Compressed,
        ])
    }

    /// Descriptor for DCSR: both dimensions compressed.
    pub fn dcsr() -> Self {
        Self::new(vec![LevelFormat::Compressed, LevelFormat::Compressed])
    }

    /// Descriptor for order-`n` COO: all singleton levels.
    pub fn coo(order: usize) -> Self {
        Self::new(vec![LevelFormat::Singleton; order])
    }

    /// Descriptor for order-`n` CSF: all compressed levels.
    pub fn csf(order: usize) -> Self {
        Self::new(vec![LevelFormat::Compressed; order])
    }

    /// Descriptor for a fully dense tensor.
    pub fn dense(dims: &[usize]) -> Self {
        Self::new(
            dims.iter()
                .map(|&size| LevelFormat::Dense { size })
                .collect(),
        )
    }

    /// Descriptor for a banded matrix: dense rows over a banded level.
    pub fn banded(rows: usize) -> Self {
        Self::new(vec![LevelFormat::Dense { size: rows }, LevelFormat::Banded])
    }

    /// Descriptor for a hashed matrix: dense rows over a hashed level.
    pub fn hashed(rows: usize) -> Self {
        Self::new(vec![LevelFormat::Dense { size: rows }, LevelFormat::Hashed])
    }

    /// Descriptor for a BCSR matrix: dense block rows over a blocked
    /// level.
    pub fn bcsr(rows: usize) -> Self {
        Self::new(vec![
            LevelFormat::Dense { size: rows },
            LevelFormat::Blocked,
        ])
    }

    /// Resolves a textual format annotation (as written in expression
    /// front-end accesses, e.g. `A(i,j:csr)`) to its level stack for a
    /// rank-`rank` access. The annotation names the whole-tensor format;
    /// dense level sizes are unknown at annotation time and come back as
    /// zero placeholders (callers query [`LevelFormat::is_data_dependent`],
    /// not sizes). Returns `None` when the annotation exists but cannot
    /// describe a tensor of this rank (a rank mismatch, distinct from an
    /// unknown annotation — see [`KNOWN_ANNOTATIONS`]).
    /// Annotation names are matched case-insensitively (`A(i,j:CSR)` and
    /// `A(i,j:csr)` name the same format).
    pub fn from_annotation(name: &str, rank: usize) -> Option<Self> {
        match (name.to_ascii_lowercase().as_str(), rank) {
            (_, 0) => None,
            ("dense", r) => Some(Self::dense(&vec![0; r])),
            ("sparse", 1) => Some(Self::new(vec![LevelFormat::Compressed])),
            ("csr", 2) => Some(Self::csr(0)),
            ("dcsr", 2) => Some(Self::dcsr()),
            ("coo", r) => Some(Self::coo(r)),
            ("csf", r) => Some(Self::csf(r)),
            ("banded", 2) => Some(Self::banded(0)),
            ("hashed", 2) => Some(Self::hashed(0)),
            ("bcsr", 2) => Some(Self::bcsr(0)),
            _ => None,
        }
    }

    /// The format conventionally assumed when an access carries no
    /// annotation: dense vectors, CSR matrices, CSF for higher orders.
    pub fn default_for_rank(rank: usize) -> Option<Self> {
        match rank {
            0 => None,
            1 => Some(Self::dense(&[0])),
            2 => Some(Self::csr(0)),
            r => Some(Self::csf(r)),
        }
    }

    /// Number of levels whose traversal has data-dependent control flow —
    /// the property that generates the branch mispredictions of §3.
    pub fn data_dependent_levels(&self) -> usize {
        self.levels.iter().filter(|l| l.is_data_dependent()).count()
    }

    /// Index-array words needed to store `nnz` non-zeros with `per_level`
    /// node counts, per the storage model of §2.2.
    ///
    /// `node_counts[l]` is the number of stored nodes at level `l`
    /// (e.g. non-empty rows at a compressed level). Dense levels cost
    /// nothing; compressed levels cost one pointer per node plus one index
    /// per child; singleton levels cost one index per non-zero.
    pub fn index_words(&self, node_counts: &[usize], nnz: usize) -> usize {
        let mut words = 0usize;
        for (l, level) in self.levels.iter().enumerate() {
            // Number of parent positions this level hangs off.
            let parents = if l == 0 {
                1
            } else {
                node_counts.get(l - 1).copied().unwrap_or(nnz)
            };
            match level {
                LevelFormat::Dense { .. } => {}
                LevelFormat::Compressed => {
                    // ptrs (one per parent + 1) + idxs (one per own node).
                    words += parents + 1 + node_counts.get(l).copied().unwrap_or(nnz);
                }
                LevelFormat::Singleton => {
                    words += nnz;
                }
                LevelFormat::Banded => {
                    // Same layout as compressed — a pointer pair per
                    // parent plus one (narrow) delta word per node.
                    words += parents + 1 + node_counts.get(l).copied().unwrap_or(nnz);
                }
                LevelFormat::Hashed => {
                    // Slot offsets per parent plus an open-addressing
                    // table sized ~2× the stored nodes (the tmu-formats
                    // hashed level's load-factor bound).
                    words += parents + 1 + 2 * node_counts.get(l).copied().unwrap_or(nnz);
                }
                LevelFormat::Blocked => {
                    // Block pointer pair per parent, then per stored
                    // block: a block column plus a 64-bit occupancy mask
                    // (two u32 words).
                    words += parents + 1 + 3 * node_counts.get(l).copied().unwrap_or(nnz);
                }
            }
        }
        words
    }
}

/// Annotation names [`FormatDescriptor::from_annotation`] understands.
/// A name outside this list is an *unknown format*; a name inside it that
/// still resolves to `None` is a *rank mismatch* — front-ends report the
/// two differently.
pub const KNOWN_ANNOTATIONS: [&str; 9] = [
    "dense", "sparse", "csr", "dcsr", "coo", "csf", "banded", "hashed", "bcsr",
];

/// Measured storage statistics of a concrete matrix under each format,
/// supporting the format-selection rules of §2.2 (`CSR` beats `COO` when
/// `nnz > rows + 1`; `DCSR` beats `CSR` when `rows > 2 × nonempty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MatrixStorageReport {
    /// Index words used by COO.
    pub coo_words: usize,
    /// Index words used by CSR.
    pub csr_words: usize,
    /// Index words used by DCSR.
    pub dcsr_words: usize,
}

impl MatrixStorageReport {
    /// Measures a matrix (given as COO) under all three matrix formats.
    pub fn measure(coo: &CooMatrix) -> Self {
        let csr = CsrMatrix::from_coo(coo);
        let dcsr = DcsrMatrix::from_csr(&csr);
        Self {
            coo_words: 2 * coo.nnz(),
            csr_words: csr.row_ptrs().len() + csr.col_idxs().len(),
            dcsr_words: dcsr.index_words(),
        }
    }
}

/// Verifies that a [`CsfTensor`]'s stored structure matches the `csf`
/// descriptor's storage model (used in property tests).
pub fn csf_node_counts(t: &CsfTensor) -> Vec<usize> {
    (0..t.order()).map(|l| t.num_nodes(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn descriptors_have_expected_shapes() {
        assert_eq!(FormatDescriptor::csr(10).order(), 2);
        assert_eq!(FormatDescriptor::coo(3).order(), 3);
        assert_eq!(FormatDescriptor::csf(4).data_dependent_levels(), 4);
        assert_eq!(FormatDescriptor::csr(10).data_dependent_levels(), 1);
        assert_eq!(FormatDescriptor::dense(&[2, 3]).data_dependent_levels(), 0);
    }

    #[test]
    fn annotations_resolve_per_rank() {
        let csr = FormatDescriptor::from_annotation("csr", 2).expect("csr is rank 2");
        assert_eq!(csr.data_dependent_levels(), 1);
        assert!(!csr.levels()[0].is_data_dependent());
        assert!(csr.levels()[1].is_data_dependent());
        assert_eq!(
            FormatDescriptor::from_annotation("csf", 3)
                .expect("csf is any rank")
                .data_dependent_levels(),
            3
        );
        // Rank mismatches and unknown names both come back None; the
        // KNOWN_ANNOTATIONS list lets callers tell them apart.
        assert!(FormatDescriptor::from_annotation("csr", 1).is_none());
        assert!(FormatDescriptor::from_annotation("sparse", 2).is_none());
        assert!(FormatDescriptor::from_annotation("blocked", 2).is_none());
        assert!(KNOWN_ANNOTATIONS.contains(&"csr"));
        assert!(!KNOWN_ANNOTATIONS.contains(&"blocked"));
        // The physical-layout annotations resolve only at rank 2, each to
        // a dense level over one data-dependent physical level.
        for name in ["banded", "hashed", "bcsr"] {
            assert!(KNOWN_ANNOTATIONS.contains(&name));
            let f = FormatDescriptor::from_annotation(name, 2).expect("rank 2");
            assert_eq!(f.order(), 2);
            assert!(!f.levels()[0].is_data_dependent());
            assert!(f.levels()[1].is_data_dependent());
            assert!(FormatDescriptor::from_annotation(name, 3).is_none());
        }
        // Annotation lookup is case-insensitive.
        assert_eq!(
            FormatDescriptor::from_annotation("BANDED", 2),
            FormatDescriptor::from_annotation("banded", 2)
        );
        assert_eq!(
            FormatDescriptor::from_annotation("Csr", 2),
            FormatDescriptor::from_annotation("csr", 2)
        );
        // Defaults: dense vectors, CSR matrices, CSF tensors.
        assert_eq!(
            FormatDescriptor::default_for_rank(1)
                .expect("rank 1")
                .data_dependent_levels(),
            0
        );
        assert_eq!(
            FormatDescriptor::default_for_rank(2).expect("rank 2"),
            FormatDescriptor::csr(0)
        );
        assert_eq!(
            FormatDescriptor::default_for_rank(4).expect("rank 4"),
            FormatDescriptor::csf(4)
        );
        assert!(FormatDescriptor::default_for_rank(0).is_none());
    }

    #[test]
    fn csr_beats_coo_when_dense_rows() {
        // 100 rows, 1000 nnz: nnz > rows + 1 so CSR must use fewer words.
        let triplets: Vec<_> = (0..1000)
            .map(|i| ((i / 10) as u32, (i % 10) as u32, 1.0))
            .collect();
        let coo = CooMatrix::from_triplets(100, 10, triplets).expect("valid");
        let report = MatrixStorageReport::measure(&coo);
        assert!(report.csr_words < report.coo_words);
    }

    #[test]
    fn dcsr_beats_csr_when_hypersparse() {
        // 1000 rows but only 10 non-empty: rows > 2 × nonempty.
        let triplets: Vec<_> = (0..10).map(|i| ((i * 100) as u32, 0, 1.0)).collect();
        let coo = CooMatrix::from_triplets(1000, 4, triplets).expect("valid");
        let report = MatrixStorageReport::measure(&coo);
        assert!(report.dcsr_words < report.csr_words);
    }

    #[test]
    fn index_words_model_matches_csr() {
        let triplets: Vec<_> = (0..100)
            .map(|i| ((i / 10) as u32, (i % 10) as u32, 1.0))
            .collect();
        let coo = CooMatrix::from_triplets(10, 10, triplets).expect("valid");
        let desc = FormatDescriptor::csr(10);
        // node_counts: 10 rows at level 0, 100 column nodes at level 1.
        let modeled = desc.index_words(&[10, 100], 100);
        let measured = MatrixStorageReport::measure(&coo).csr_words;
        assert_eq!(modeled, measured);
    }
}
