//! Sparse tensor formats, fiber merge semantics, and synthetic workload
//! generators for the TMU reproduction.
//!
//! This crate is the data substrate of the reproduction of *"A Tensor
//! Marshaling Unit for Sparse Tensor Algebra on General-Purpose Processors"*
//! (MICRO 2023). It provides:
//!
//! * the compression formats of §2.2 of the paper — [`CooMatrix`],
//!   [`CsrMatrix`], [`DcsrMatrix`], [`CooTensor`], [`CsfTensor`] and dense
//!   storage ([`DenseMatrix`], [`DenseVector`]);
//! * the hierarchical *level format* abstraction of Chou et al. used by the
//!   paper to argue format completeness ([`level`]);
//! * reference implementations of fiber co-iteration — disjunctive and
//!   conjunctive merging and lockstep traversal ([`merge`]) — that the TMU
//!   hardware model is tested against;
//! * synthetic input generators replicating the statistics of the paper's
//!   SuiteSparse/FROSTT inputs at simulation-tractable scale ([`gen`]).
//!
//! # Example
//!
//! ```
//! use tmu_tensor::{CooMatrix, CsrMatrix};
//!
//! # fn main() -> Result<(), tmu_tensor::FormatError> {
//! let coo = CooMatrix::from_triplets(
//!     4,
//!     6,
//!     vec![(0, 0, 1.0), (0, 5, 2.0), (2, 1, 3.0), (3, 4, 4.0)],
//! )?;
//! let csr = CsrMatrix::from_coo(&coo);
//! assert_eq!(csr.nnz(), 4);
//! assert_eq!(csr.row(2).count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bcsr;
mod coo;
mod csf;
mod csr;
mod dcsr;
mod dense;
mod error;
pub mod gen;
pub mod io;
pub mod level;
pub mod merge;

pub use bcsr::BcsrMatrix;
pub use coo::{CooMatrix, CooTensor};
pub use csf::{CsfNodeIter, CsfTensor};
pub use csr::{CsrMatrix, CsrRowIter};
pub use dcsr::DcsrMatrix;
pub use dense::{DenseMatrix, DenseTensor, DenseVector};
pub use error::FormatError;

/// Index type used for tensor coordinates throughout the workspace.
///
/// 32-bit indexes match what the paper's hardware streams carry and keep the
/// memory traffic of the simulated kernels faithful to the originals.
pub type Idx = u32;

/// Value type for tensor elements (the paper computes in double precision).
pub type Val = f64;
