//! Reference fiber co-iteration semantics (§2.4, Figure 2).
//!
//! Sparse kernels combine fibers by *merging* their sorted coordinate
//! streams. [`DisjunctiveMerge`] joins fibers (union of coordinates, used by
//! addition since `0 + x = x`); [`ConjunctiveMerge`] intersects them (used by
//! element-wise multiplication since `0 · x = 0`); [`LockstepIter`]
//! co-iterates positionally. These iterators are the oracle the TMU
//! engine's hardware mergers (Traversal Groups) are tested against: for any
//! set of fibers, the TG predicate/operand stream must equal the
//! [`MergeItem`] stream produced here.

use crate::{Idx, Val};

/// One step of a k-way merge.
///
/// `mask` is the multi-hot lane predicate of the paper: bit `j` is set when
/// fiber `j` participates in this step (its head coordinate equals the
/// step's output coordinate). `vals[j]` holds fiber `j`'s value when bit `j`
/// is set and `0.0` otherwise — mirroring how the TMU pads vector operands
/// for inactive lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeItem {
    /// Output coordinate of this step.
    pub coord: Idx,
    /// Multi-hot participation predicate (bit per fiber).
    pub mask: u64,
    /// Per-fiber values (zero-padded for non-participating fibers).
    pub vals: Vec<Val>,
}

impl MergeItem {
    /// Sum of participating values (the disjunctive combine rule).
    pub fn sum(&self) -> Val {
        self.vals.iter().sum()
    }

    /// Product of participating values (the conjunctive combine rule).
    ///
    /// Only meaningful for items produced by a conjunctive merge, where all
    /// fibers participate.
    pub fn product(&self) -> Val {
        self.vals.iter().product()
    }

    /// Number of participating fibers.
    pub fn popcount(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// A sorted fiber held as a pair of parallel slices.
#[derive(Debug, Clone, Copy)]
pub struct FiberSlice<'a> {
    idxs: &'a [Idx],
    vals: &'a [Val],
}

impl<'a> FiberSlice<'a> {
    /// Creates a fiber view over parallel coordinate/value slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn new(idxs: &'a [Idx], vals: &'a [Val]) -> Self {
        assert_eq!(idxs.len(), vals.len(), "fiber slices must be parallel");
        Self { idxs, vals }
    }

    /// Coordinates slice.
    pub fn idxs(&self) -> &'a [Idx] {
        self.idxs
    }

    /// Values slice.
    pub fn vals(&self) -> &'a [Val] {
        self.vals
    }

    /// Number of elements in the fiber.
    pub fn len(&self) -> usize {
        self.idxs.len()
    }

    /// Whether the fiber is empty.
    pub fn is_empty(&self) -> bool {
        self.idxs.is_empty()
    }
}

/// Disjunctive (union) k-way merge of sorted fibers (Figure 2, top).
///
/// Each step outputs the minimum head coordinate among non-exhausted fibers
/// and consumes every fiber sitting at that coordinate.
#[derive(Debug, Clone)]
pub struct DisjunctiveMerge<'a> {
    fibers: Vec<FiberSlice<'a>>,
    pos: Vec<usize>,
}

impl<'a> DisjunctiveMerge<'a> {
    /// Creates a disjunctive merge over `fibers`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 fibers are supplied (mask width).
    pub fn new(fibers: Vec<FiberSlice<'a>>) -> Self {
        assert!(fibers.len() <= 64, "at most 64 fibers per merge");
        let pos = vec![0; fibers.len()];
        Self { fibers, pos }
    }
}

impl Iterator for DisjunctiveMerge<'_> {
    type Item = MergeItem;

    fn next(&mut self) -> Option<MergeItem> {
        let min = self
            .fibers
            .iter()
            .zip(&self.pos)
            .filter_map(|(f, &p)| f.idxs.get(p).copied())
            .min()?;
        let mut mask = 0u64;
        let mut vals = vec![0.0; self.fibers.len()];
        for (j, (f, p)) in self.fibers.iter().zip(self.pos.iter_mut()).enumerate() {
            if f.idxs.get(*p) == Some(&min) {
                mask |= 1 << j;
                vals[j] = f.vals[*p];
                *p += 1;
            }
        }
        Some(MergeItem {
            coord: min,
            mask,
            vals,
        })
    }
}

/// Conjunctive (intersection) k-way merge of sorted fibers (Figure 2,
/// bottom).
///
/// Each step advances the fibers with minimum head coordinate but only
/// yields an item when *all* fibers share the coordinate.
#[derive(Debug, Clone)]
pub struct ConjunctiveMerge<'a> {
    fibers: Vec<FiberSlice<'a>>,
    pos: Vec<usize>,
}

impl<'a> ConjunctiveMerge<'a> {
    /// Creates a conjunctive merge over `fibers`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 fibers are supplied (mask width).
    pub fn new(fibers: Vec<FiberSlice<'a>>) -> Self {
        assert!(fibers.len() <= 64, "at most 64 fibers per merge");
        let pos = vec![0; fibers.len()];
        Self { fibers, pos }
    }
}

impl Iterator for ConjunctiveMerge<'_> {
    type Item = MergeItem;

    fn next(&mut self) -> Option<MergeItem> {
        if self.fibers.is_empty() {
            return None;
        }
        loop {
            // Conjunction ends as soon as any fiber is exhausted.
            let mut min = Idx::MAX;
            for (f, &p) in self.fibers.iter().zip(&self.pos) {
                match f.idxs.get(p) {
                    None => return None,
                    Some(&c) => min = min.min(c),
                }
            }
            let mut all = true;
            for (f, p) in self.fibers.iter().zip(self.pos.iter_mut()) {
                if f.idxs[*p] == min {
                    *p += 1;
                } else {
                    all = false;
                }
            }
            if all {
                let k = self.fibers.len();
                let vals: Vec<Val> = self
                    .fibers
                    .iter()
                    .zip(&self.pos)
                    .map(|(f, &p)| f.vals[p - 1])
                    .collect();
                let mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
                return Some(MergeItem {
                    coord: min,
                    mask,
                    vals,
                });
            }
        }
    }
}

/// Positional lockstep co-iteration of fibers (§5.2, lockstep rule).
///
/// Each step yields the heads of all fibers that still have elements; the
/// mask marks the live lanes. This is the TMU's parallel-loading mode —
/// lanes traverse disjoint iteration spaces and their values are packed into
/// one vector operand per step.
#[derive(Debug, Clone)]
pub struct LockstepIter<'a> {
    fibers: Vec<FiberSlice<'a>>,
    pos: usize,
}

impl<'a> LockstepIter<'a> {
    /// Creates a lockstep co-iteration over `fibers`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 fibers are supplied (mask width).
    pub fn new(fibers: Vec<FiberSlice<'a>>) -> Self {
        assert!(fibers.len() <= 64, "at most 64 fibers per lockstep group");
        Self { fibers, pos: 0 }
    }
}

/// One lockstep step: per-lane `(coord, val)` heads for live lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepItem {
    /// Multi-hot predicate of lanes that produced an element this step.
    pub mask: u64,
    /// Per-lane coordinates (zero for finished lanes).
    pub coords: Vec<Idx>,
    /// Per-lane values (zero for finished lanes).
    pub vals: Vec<Val>,
}

impl Iterator for LockstepIter<'_> {
    type Item = LockstepItem;

    fn next(&mut self) -> Option<LockstepItem> {
        let mut mask = 0u64;
        let k = self.fibers.len();
        let mut coords = vec![0 as Idx; k];
        let mut vals = vec![0.0 as Val; k];
        for (j, f) in self.fibers.iter().enumerate() {
            if self.pos < f.len() {
                mask |= 1 << j;
                coords[j] = f.idxs[self.pos];
                vals[j] = f.vals[self.pos];
            }
        }
        if mask == 0 {
            return None;
        }
        self.pos += 1;
        Some(LockstepItem { mask, coords, vals })
    }
}

/// Disjunctively merges fibers into a single accumulated fiber
/// (coordinate-sorted, unique coordinates, values summed) — the *reduction*
/// operation of §2.5.
pub fn reduce_disjunctive(fibers: Vec<FiberSlice<'_>>) -> (Vec<Idx>, Vec<Val>) {
    let mut idxs = Vec::new();
    let mut vals = Vec::new();
    for item in DisjunctiveMerge::new(fibers) {
        idxs.push(item.coord);
        vals.push(item.sum());
    }
    (idxs, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two fibers of Figure 2: A = {0:A, 2:B, 5:E}, B = {2:C, 3:D, 5:F}
    /// (letters replaced by 1..6).
    fn figure2() -> (Vec<Idx>, Vec<Val>, Vec<Idx>, Vec<Val>) {
        (
            vec![0, 2, 5],
            vec![1.0, 2.0, 5.0],
            vec![2, 3, 5],
            vec![3.0, 4.0, 6.0],
        )
    }

    #[test]
    fn disjunctive_matches_figure2() {
        let (ai, av, bi, bv) = figure2();
        let items: Vec<_> =
            DisjunctiveMerge::new(vec![FiberSlice::new(&ai, &av), FiberSlice::new(&bi, &bv)])
                .collect();
        // Paper's msk stream for Figure 2 merging: coordinates 0,2,3,5 with
        // masks 01, 11, 10, 11 (bit0 = fiber A, bit1 = fiber B).
        let coords: Vec<_> = items.iter().map(|i| i.coord).collect();
        let masks: Vec<_> = items.iter().map(|i| i.mask).collect();
        assert_eq!(coords, vec![0, 2, 3, 5]);
        assert_eq!(masks, vec![0b01, 0b11, 0b10, 0b11]);
        let sums: Vec<_> = items.iter().map(MergeItem::sum).collect();
        assert_eq!(sums, vec![1.0, 5.0, 4.0, 11.0]);
    }

    #[test]
    fn conjunctive_matches_figure2() {
        let (ai, av, bi, bv) = figure2();
        let items: Vec<_> =
            ConjunctiveMerge::new(vec![FiberSlice::new(&ai, &av), FiberSlice::new(&bi, &bv)])
                .collect();
        let coords: Vec<_> = items.iter().map(|i| i.coord).collect();
        assert_eq!(coords, vec![2, 5]);
        let prods: Vec<_> = items.iter().map(MergeItem::product).collect();
        assert_eq!(prods, vec![6.0, 30.0]);
    }

    #[test]
    fn disjunctive_single_fiber_is_identity() {
        let (ai, av, _, _) = figure2();
        let items: Vec<_> = DisjunctiveMerge::new(vec![FiberSlice::new(&ai, &av)]).collect();
        let coords: Vec<_> = items.iter().map(|i| i.coord).collect();
        assert_eq!(coords, ai);
        assert!(items.iter().all(|i| i.mask == 1));
    }

    #[test]
    fn conjunctive_with_empty_fiber_is_empty() {
        let (ai, av, _, _) = figure2();
        let empty_i: Vec<Idx> = vec![];
        let empty_v: Vec<Val> = vec![];
        let items: Vec<_> = ConjunctiveMerge::new(vec![
            FiberSlice::new(&ai, &av),
            FiberSlice::new(&empty_i, &empty_v),
        ])
        .collect();
        assert!(items.is_empty());
    }

    #[test]
    fn lockstep_pads_short_fibers() {
        let (ai, av, bi, bv) = figure2();
        let short_i = &bi[..2];
        let short_v = &bv[..2];
        let items: Vec<_> = LockstepIter::new(vec![
            FiberSlice::new(&ai, &av),
            FiberSlice::new(short_i, short_v),
        ])
        .collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].mask, 0b11);
        assert_eq!(items[2].mask, 0b01);
        assert_eq!(items[2].vals, vec![5.0, 0.0]);
    }

    #[test]
    fn reduce_accumulates_duplicates() {
        // SpKAdd-style reduction: values at equal coordinates are summed.
        let i1: Vec<Idx> = vec![1, 4];
        let v1 = vec![1.0, 2.0];
        let i2: Vec<Idx> = vec![1, 2, 4];
        let v2 = vec![10.0, 20.0, 30.0];
        let (idxs, vals) =
            reduce_disjunctive(vec![FiberSlice::new(&i1, &v1), FiberSlice::new(&i2, &v2)]);
        assert_eq!(idxs, vec![1, 2, 4]);
        assert_eq!(vals, vec![11.0, 20.0, 32.0]);
    }

    #[test]
    fn disjunctive_three_way() {
        let i1: Vec<Idx> = vec![0];
        let i2: Vec<Idx> = vec![0, 1];
        let i3: Vec<Idx> = vec![1];
        let v = [vec![1.0], vec![2.0, 3.0], vec![4.0]];
        let items: Vec<_> = DisjunctiveMerge::new(vec![
            FiberSlice::new(&i1, &v[0]),
            FiberSlice::new(&i2, &v[1]),
            FiberSlice::new(&i3, &v[2]),
        ])
        .collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].mask, 0b011);
        assert_eq!(items[1].mask, 0b110);
        assert_eq!(items[0].sum(), 3.0);
        assert_eq!(items[1].sum(), 7.0);
    }
}
