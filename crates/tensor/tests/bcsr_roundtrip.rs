//! Property tests for the blocked/BCSR layout: CSR → blocked → dense
//! equals CSR → dense, and CSR → blocked → CSR is the identity — across
//! block shapes that tile the matrix evenly and ones that leave ragged
//! remainder tiles on the right and bottom edges.

use proptest::prelude::*;

use tmu_tensor::{BcsrMatrix, CooMatrix, CsrMatrix};

const ROWS: usize = 37;
const COLS: usize = 41;

fn triplets() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::btree_map((0u32..ROWS as u32, 0u32..COLS as u32), 0.25f64..4.0, 0..200)
        .prop_map(|m| m.into_iter().map(|((r, c), v)| (r, c, v)).collect())
}

// 1×1 (degenerate), a power-of-two tile that leaves remainders on the
// 37×41 shape, odd tile sides, a tall-skinny and a wide-flat tile, and
// the register-tile shape the blocked backend uses.
const SHAPES: [(usize, usize); 7] = [(1, 1), (2, 2), (4, 4), (3, 5), (7, 2), (1, 8), (4, 8)];

fn block_shape() -> impl Strategy<Value = (usize, usize)> {
    (0usize..SHAPES.len()).prop_map(|i| SHAPES[i])
}

fn dense_of_csr(m: &CsrMatrix) -> Vec<f64> {
    let mut out = vec![0.0; m.rows() * m.cols()];
    for i in 0..m.rows() {
        for (c, v) in m.row(i) {
            out[i * m.cols() + c as usize] = v;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn blocked_dense_equals_csr_dense(ts in triplets(), (br, bc) in block_shape()) {
        let coo = CooMatrix::from_triplets(ROWS, COLS, ts).expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        let blocked = BcsrMatrix::from_csr(&csr, br, bc);
        prop_assert_eq!(blocked.to_dense(), dense_of_csr(&csr));
    }

    #[test]
    fn blocked_roundtrips_csr_exactly(ts in triplets(), (br, bc) in block_shape()) {
        let coo = CooMatrix::from_triplets(ROWS, COLS, ts).expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        let blocked = BcsrMatrix::from_csr(&csr, br, bc);
        prop_assert_eq!(blocked.nnz(), csr.nnz());
        // Exact structural round-trip: pointers, indexes, and values —
        // stored zeros included — come back verbatim.
        prop_assert_eq!(blocked.to_csr(), csr);
    }

    #[test]
    fn occupancy_is_a_valid_fraction(ts in triplets(), (br, bc) in block_shape()) {
        let coo = CooMatrix::from_triplets(ROWS, COLS, ts).expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        let blocked = BcsrMatrix::from_csr(&csr, br, bc);
        let occ = blocked.occupancy();
        prop_assert!(occ > 0.0 && occ <= 1.0);
        // Every stored entry lives in exactly one materialized block.
        prop_assert!(blocked.num_blocks() * br * bc >= blocked.nnz());
    }
}
