//! Chrome `chrome://tracing` / Perfetto trace-event JSON exporter.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) of the
//! [trace-event format]. Each instrumented component becomes a named
//! thread (`"M"` metadata events); duration kinds become complete
//! (`"X"`) events, counter samples become `"C"` events, and everything
//! else becomes instant (`"i"`) events. Output is fully deterministic —
//! components in id order, events in ring order, no timestamps or ids
//! taken from the host — so identical runs produce byte-identical files
//! regardless of how many runner workers were active.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::ring::{unpack_dur_extra, TraceEvent};
use crate::Tracer;

/// Renders the tracer's rings as Chrome trace-event JSON.
pub fn export(tracer: &Tracer) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (id, name) in tracer.components().iter().enumerate() {
        let tid = id as u32;
        push_event(&mut out, &mut first, &meta_thread_name(tid, name));
        let ring = tracer.ring(crate::ComponentId(tid));
        for ev in ring.events() {
            push_event(&mut out, &mut first, &render(ev));
        }
        if ring.dropped() > 0 {
            // Surface truncation in the trace itself: a viewer that sees
            // this instant knows the ring overflowed at that point.
            let last_cycle = ring.events().last().map_or(0, |e| e.cycle);
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"ring_overflow\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{last_cycle},\"args\":{{\"dropped\":{}}}}}",
                    ring.dropped()
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(ev);
}

fn meta_thread_name(tid: u32, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

fn render(ev: &TraceEvent) -> String {
    let name = ev.kind.name();
    let tid = ev.component;
    let ts = ev.cycle;
    if ev.kind.is_duration() {
        let (dur, extra) = unpack_dur_extra(ev.payload);
        // Zero-length "X" events render invisibly; clamp to 1 cycle.
        let dur = dur.max(1);
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{\"extra\":{extra}}}}}"
        )
    } else if ev.kind.is_counter_sample() {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{ts},\"args\":{{\"value\":{}}}}}",
            ev.payload
        )
    } else {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{ts},\"args\":{{\"payload\":{}}}}}",
            ev.payload
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{pack_dur_extra, EventKind};
    use crate::{TraceConfig, Tracer};

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            ring_capacity: 4,
            sample_period: 64,
        });
        let tmu = t.component("system.core0.tmu");
        let l1 = t.component("system.core0.l1");
        t.event(tmu, 10, EventKind::TuFetch, pack_dur_extra(25, 0x0100));
        t.event(tmu, 40, EventKind::OutQOccupancy, 3);
        t.event(l1, 12, EventKind::CacheMiss, 0x40);
        t
    }

    #[test]
    fn export_shapes_each_phase_correctly() {
        let json = export(&sample_tracer());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Metadata names both components.
        assert!(json.contains("\"args\":{\"name\":\"system.core0.tmu\"}"));
        assert!(json.contains("\"args\":{\"name\":\"system.core0.l1\"}"));
        // Duration event carries ts + dur, counter carries args.value.
        assert!(json.contains(
            "{\"name\":\"tu_fetch\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
             \"ts\":10,\"dur\":25,\"args\":{\"extra\":256}}"
        ));
        assert!(json.contains(
            "{\"name\":\"outq_occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\
             \"ts\":40,\"args\":{\"value\":3}}"
        ));
        assert!(json.contains("\"name\":\"cache_miss\",\"ph\":\"i\""));
    }

    #[test]
    fn overflow_is_visible_in_the_trace() {
        let mut t = sample_tracer();
        let tmu = t.component("system.core0.tmu");
        for i in 0..10 {
            t.event(tmu, 100 + i, EventKind::OutQPush, i);
        }
        let json = export(&t);
        assert!(json.contains("\"name\":\"ring_overflow\""));
        assert!(json.contains("\"dropped\":8"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = export(&sample_tracer());
        let b = export(&sample_tracer());
        assert_eq!(a, b);
    }
}
