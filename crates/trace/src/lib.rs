//! `tmu-trace`: cycle-level tracing and telemetry for the TMU simulator.
//!
//! Three layers, cheapest first:
//!
//! 1. [`StatsRegistry`] — a hierarchical counter/gauge registry with
//!    gem5-style dotted names (`system.core0.l1.hits`). Always available;
//!    this is where end-of-run aggregates live.
//! 2. [`EventRing`] / [`TraceEvent`] — typed, preallocated per-component
//!    event buffers for cycle-level activity (TU fetches, TG steps, outQ
//!    chunks, cache/DRAM events). Bounded memory, drop-counted overflow,
//!    no allocation on the hot path.
//! 3. Exporters — [`chrome::export`] renders the rings as Chrome
//!    `chrome://tracing` / Perfetto trace-event JSON;
//!    [`StatsRegistry::dump_text`] renders the registry as a flat gem5-style
//!    stats file.
//!
//! Instrumentation call sites in the simulator are compiled out unless the
//! `trace` cargo feature of the instrumented crate is enabled, and even
//! then they are skipped unless a [`Tracer`] has been [`install`]ed for
//! the process — so the default benchmark configuration pays nothing.

#![warn(missing_docs)]

pub mod chrome;
pub mod registry;
pub mod ring;

pub use registry::{Stat, StatsRegistry};
pub use ring::{pack_dur_extra, unpack_dur_extra, EventKind, EventRing, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Runtime tracing knobs. Compile-time gating (the `trace` feature)
/// decides whether call sites exist at all; this decides what an
/// installed tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch: a disabled tracer records nothing.
    pub enabled: bool,
    /// Per-component event-ring capacity (events).
    pub ring_capacity: usize,
    /// Period, in cycles, between occupancy/pressure samples.
    pub sample_period: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            ring_capacity: 1 << 16,
            sample_period: 256,
        }
    }
}

impl TraceConfig {
    /// Builds a config from the environment: `TMU_TRACE_RING` overrides
    /// the per-component ring capacity, `TMU_TRACE_SAMPLE` the sampling
    /// period. Unset or unparsable values keep the defaults.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(cap) = parse_env("TMU_TRACE_RING") {
            cfg.ring_capacity = cap as usize;
        }
        if let Some(period) = parse_env("TMU_TRACE_SAMPLE") {
            cfg.sample_period = period.max(1);
        }
        cfg
    }
}

fn parse_env(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// Handle for a registered component; indexes the tracer's ring table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(pub u32);

/// The per-run trace collector: component table, one event ring per
/// component, and the stats registry the exporters read.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    components: Vec<String>,
    rings: Vec<EventRing>,
    registry: StatsRegistry,
}

impl Tracer {
    /// A tracer with no components yet, configured by `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            cfg,
            components: Vec::new(),
            rings: Vec::new(),
            registry: StatsRegistry::new(),
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Registers (or looks up) a component by its dotted name and returns
    /// its id. Registration allocates the component's full event ring up
    /// front; re-registering an existing name is idempotent.
    pub fn component(&mut self, name: &str) -> ComponentId {
        if let Some(idx) = self.components.iter().position(|c| c == name) {
            return ComponentId(idx as u32);
        }
        self.components.push(name.to_owned());
        self.rings.push(EventRing::new(self.cfg.ring_capacity));
        ComponentId((self.components.len() - 1) as u32)
    }

    /// Records one event against `component`. No-op when the tracer is
    /// disabled; drop-counted when the component's ring is full.
    #[inline]
    pub fn event(&mut self, component: ComponentId, cycle: u64, kind: EventKind, payload: u64) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(ring) = self.rings.get_mut(component.0 as usize) {
            ring.push(TraceEvent {
                cycle,
                component: component.0,
                kind,
                payload,
            });
        }
    }

    /// Registered component names, in id order.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// The event ring of `component`.
    ///
    /// # Panics
    /// Panics if `component` was not returned by [`Tracer::component`].
    pub fn ring(&self, component: ComponentId) -> &EventRing {
        &self.rings[component.0 as usize]
    }

    /// Total events dropped across all component rings.
    pub fn dropped_total(&self) -> u64 {
        self.rings.iter().map(EventRing::dropped).sum()
    }

    /// The counter/gauge registry.
    pub fn registry(&self) -> &StatsRegistry {
        &self.registry
    }

    /// Mutable access to the counter/gauge registry.
    pub fn registry_mut(&mut self) -> &mut StatsRegistry {
        &mut self.registry
    }

    /// Renders the rings as Chrome trace-event JSON (see [`chrome`]).
    pub fn chrome_json(&self) -> String {
        chrome::export(self)
    }
}

/// Fixed-period sampler: tracks the next cycle at which a periodic
/// occupancy/pressure sample is due.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicSampler {
    period: u64,
    next: u64,
}

impl PeriodicSampler {
    /// A sampler firing every `period` cycles, starting at cycle 0.
    pub fn new(period: u64) -> Self {
        Self {
            period: period.max(1),
            next: 0,
        }
    }

    /// Whether a sample is due at `cycle`; advances the deadline past
    /// `cycle` when it is. Call once per tick with a monotone cycle.
    #[inline]
    pub fn due(&mut self, cycle: u64) -> bool {
        if cycle < self.next {
            return false;
        }
        // Advance past `cycle` even across gaps so a stalled caller does
        // not burst-sample on resume.
        let periods = (cycle - self.next) / self.period + 1;
        self.next += periods * self.period;
        true
    }
}

// The process-global tracer. Instrumented components are constructed deep
// inside the simulator where threading a &mut Tracer through every layer
// would distort the APIs being measured; instead the trace binary installs
// a tracer for its single job and call sites reach it through `with`. The
// atomic flag keeps the not-installed case to one relaxed load. The
// tracer is scoped to its installing thread: a simulation running
// concurrently on another thread of the same process (parallel tests,
// runner workers on other jobs) cannot interleave into the trace.
static TRACER_ACTIVE: AtomicBool = AtomicBool::new(false);
static TRACER: Mutex<Option<(std::thread::ThreadId, Tracer)>> = Mutex::new(None);

/// Installs `tracer` as the process-global tracer, returning the previous
/// one if any. The tracer only records from the calling thread — run the
/// traced job on the thread that installed it.
pub fn install(tracer: Tracer) -> Option<Tracer> {
    let mut guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    let prev = guard.replace((std::thread::current().id(), tracer));
    TRACER_ACTIVE.store(true, Ordering::Release);
    prev.map(|(_, t)| t)
}

/// Removes and returns the process-global tracer (from any thread).
pub fn uninstall() -> Option<Tracer> {
    let mut guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    TRACER_ACTIVE.store(false, Ordering::Release);
    guard.take().map(|(_, t)| t)
}

/// Whether a tracer is currently installed. One relaxed atomic load —
/// this is the fast-path check instrumentation sites make before taking
/// the lock.
#[inline]
pub fn is_active() -> bool {
    TRACER_ACTIVE.load(Ordering::Relaxed)
}

/// Runs `f` against the installed tracer, if any. Returns `None` (without
/// locking) when no tracer is installed, and (after the lock) when the
/// caller is not the installing thread — see the thread-scoping note
/// above.
#[inline]
pub fn with<R>(f: impl FnOnce(&mut Tracer) -> R) -> Option<R> {
    if !is_active() {
        return None;
    }
    let mut guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    match guard.as_mut() {
        Some((owner, tracer)) if *owner == std::thread::current().id() => Some(f(tracer)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_registration_is_idempotent() {
        let mut t = Tracer::new(TraceConfig::default());
        let a = t.component("system.dram");
        let b = t.component("system.core0.l1");
        let a2 = t.component("system.dram");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.components(), ["system.dram", "system.core0.l1"]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        });
        let c = t.component("system.dram");
        t.event(c, 1, EventKind::DramRowOpen, 0);
        assert!(t.ring(c).is_empty());
        assert_eq!(t.dropped_total(), 0);
    }

    #[test]
    fn sampler_fires_on_period_and_skips_gaps() {
        let mut s = PeriodicSampler::new(100);
        assert!(s.due(0));
        assert!(!s.due(50));
        assert!(s.due(100));
        // A long stall covering many periods yields one sample, then the
        // schedule resumes from the stall's end.
        assert!(s.due(1000));
        assert!(!s.due(1050));
        assert!(s.due(1100));
    }

    #[test]
    fn global_install_roundtrip() {
        // Single test touching the global slot: the other tests in this
        // crate use local tracers, so no cross-test interference.
        assert!(uninstall().is_none());
        assert!(!is_active());
        assert!(with(|_| ()).is_none());
        let mut t = Tracer::new(TraceConfig::default());
        t.component("system.dram");
        assert!(install(t).is_none());
        assert!(is_active());
        let n = with(|t| t.components().len());
        assert_eq!(n, Some(1));
        // Thread-scoped: another thread sees the active flag but records
        // nothing — its simulations cannot pollute this thread's trace.
        std::thread::spawn(|| {
            assert!(is_active());
            assert!(with(|_| ()).is_none());
        })
        .join()
        .expect("scoping probe thread");
        let back = uninstall().expect("tracer should be installed");
        assert_eq!(back.components(), ["system.dram"]);
        assert!(!is_active());
    }
}
