//! Hierarchical counter/gauge registry with gem5-style dotted names.
//!
//! Every end-of-run statistic lives under a dotted path such as
//! `system.core0.backend` or `system.dram.row_hits`. The registry is the
//! single source both exporters draw from: the flat text dump renders it
//! directly, and `tmu-bench` reads its counters back when flattening runs
//! into `results/bench.json` rows — one counter system, two views.

use std::collections::BTreeMap;

/// One registered statistic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Stat {
    /// A monotonically accumulated integer (events, cycles, lines).
    Counter(u64),
    /// A point-in-time or derived floating value (rates, ratios).
    Gauge(f64),
}

/// A sorted map of dotted stat names to values.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsRegistry {
    stats: BTreeMap<String, Stat>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets counter `name` to `v` (registering it if new).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        match self.stats.get_mut(name) {
            Some(s) => *s = Stat::Counter(v),
            None => {
                self.stats.insert(name.to_owned(), Stat::Counter(v));
            }
        }
    }

    /// Adds `v` to counter `name` (registering it at `v` if new). Gauges
    /// reached through this method are overwritten as counters.
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self.stats.get_mut(name) {
            Some(Stat::Counter(c)) => *c += v,
            Some(s) => *s = Stat::Counter(v),
            None => {
                self.stats.insert(name.to_owned(), Stat::Counter(v));
            }
        }
    }

    /// Sets gauge `name` to `v` (registering it if new).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        match self.stats.get_mut(name) {
            Some(s) => *s = Stat::Gauge(v),
            None => {
                self.stats.insert(name.to_owned(), Stat::Gauge(v));
            }
        }
    }

    /// Value of counter `name`, if registered as a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.stats.get(name) {
            Some(Stat::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Value of gauge `name`, if registered as a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.stats.get(name) {
            Some(Stat::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of registered stats.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterates stats in sorted (hierarchical) name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Stat)> {
        self.stats.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorbs `other`, overwriting stats that share a name.
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (name, stat) in &other.stats {
            self.stats.insert(name.clone(), *stat);
        }
    }

    /// Renders the gem5-style flat text dump: one `name value` line per
    /// stat, sorted by name.
    pub fn dump_text(&self) -> String {
        let mut out = String::new();
        let width = self.stats.keys().map(String::len).max().unwrap_or(0);
        for (name, stat) in &self.stats {
            out.push_str(name);
            for _ in name.len()..width + 2 {
                out.push(' ');
            }
            match stat {
                Stat::Counter(c) => out.push_str(&c.to_string()),
                Stat::Gauge(g) => out.push_str(&format!("{g}")),
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = StatsRegistry::new();
        r.add_counter("system.core0.commits", 3);
        r.add_counter("system.core0.commits", 4);
        r.set_counter("system.dram.row_hits", 9);
        r.set_gauge("system.dram.row_hit_rate", 0.75);
        assert_eq!(r.counter("system.core0.commits"), Some(7));
        assert_eq!(r.counter("system.dram.row_hits"), Some(9));
        assert_eq!(r.gauge("system.dram.row_hit_rate"), Some(0.75));
        assert_eq!(r.counter("system.dram.row_hit_rate"), None);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn dump_is_sorted_and_aligned() {
        let mut r = StatsRegistry::new();
        r.set_counter("b.long.name", 2);
        r.set_counter("a", 1);
        r.set_gauge("c", 0.5);
        let dump = r.dump_text();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].starts_with("a "), "{dump}");
        assert!(lines[1].starts_with("b.long.name"), "{dump}");
        assert!(lines[2].starts_with("c "), "{dump}");
        assert!(lines[0].ends_with(" 1"));
        assert!(lines[2].ends_with(" 0.5"));
    }

    #[test]
    fn merge_overwrites_shared_names() {
        let mut a = StatsRegistry::new();
        a.set_counter("x", 1);
        a.set_counter("only_a", 5);
        let mut b = StatsRegistry::new();
        b.set_counter("x", 2);
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(2));
        assert_eq!(a.counter("only_a"), Some(5));
    }
}
