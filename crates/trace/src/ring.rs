//! Typed, preallocated per-component event ring buffers.
//!
//! Every instrumented component of the simulator owns one [`EventRing`].
//! The ring's storage is allocated once at registration time; the hot
//! path ([`EventRing::push`]) is a bounds check plus a `Vec` write into
//! reserved capacity — it never allocates. When the ring is full, further
//! events are dropped and counted, so a runaway event source degrades the
//! trace (visibly, via [`EventRing::dropped`]) instead of the run.

/// What an event records. The kind determines how the Chrome exporter
/// renders it (instant, duration, or counter sample) and how the payload
/// of the carrying [`TraceEvent`] is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    // -- instant events (payload: kind-specific detail word) --
    /// A cache access hit a resident line (payload: line address).
    CacheHit,
    /// A cache access missed and issued a new fetch (payload: line address).
    CacheMiss,
    /// A cache access merged into an in-flight fetch (payload: line address).
    CacheMerge,
    /// A DRAM access opened a new row (payload: `channel << 48 | row`).
    DramRowOpen,
    /// A DRAM access hit the open row (payload: `channel << 48 | row`).
    DramRowHit,
    /// A load/store was delayed by a full load/store queue
    /// (payload: delay in cycles).
    LsqStall,
    /// The core's top-down cycle class changed (payload: 0 committing,
    /// 1 frontend-stalled, 2 backend-stalled).
    StallClass,
    /// An outQ entry was pushed into the current chunk (payload: chunk id).
    OutQPush,
    /// The engine spent a cycle stalled on the outQ double-buffer gate
    /// (payload: chunks the engine is ahead of the core's acks).
    OutQFull,
    /// The traversal advanced into a different layer
    /// (payload: new layer index).
    LayerTransition,
    /// TMU context saved (payload: outQ entries produced so far; the event
    /// cycle carries the completed step count).
    CtxSave,
    /// TMU context restored (payload: outQ entries produced before the
    /// switch; the event cycle carries the replayed step count).
    CtxRestore,
    /// The fault plan injected a fault into an engine (payload: the
    /// fault-kind bitmask bit, `tmu_sim::FaultKind::bit`).
    FaultInjected,
    /// The engine quiesced and raised a precise trap (payload: completed
    /// step count at the trap point).
    TrapRaised,
    /// The system watchdog detected no forward progress and aborted the
    /// run (payload: the no-progress window in cycles).
    WatchdogFired,
    /// A scheduler dispatched a tenant's job onto a serving slot
    /// (payload: `tenant << 32 | job id`).
    TenantDispatch,
    /// A scheduler preempted a tenant's job — quiesce + context save
    /// (payload: `tenant << 32 | job id`).
    TenantPreempt,
    /// A tenant's job ran to completion (payload: `tenant << 32 | job id`).
    TenantComplete,
    /// A tenant's admission queue rejected an arrival — the bounded queue
    /// was full (payload: tenant id).
    TenantReject,
    /// A serving slot crashed and will reboot — the job incarnation on it
    /// is lost (payload: slot id).
    SlotCrash,
    /// A faulted job was re-queued for another attempt after its backoff
    /// window (payload: `tenant << 32 | job id`).
    JobRetry,
    /// The scheduler saved a periodic job-level checkpoint — quiesce,
    /// context snapshot, resume in place (payload: `tenant << 32 | job id`).
    CheckpointSave,
    /// A job completed after its deadline (payload:
    /// `tenant << 32 | job id`).
    DeadlineMiss,
    /// A tenant's circuit breaker opened: its jobs faulted repeatedly and
    /// new arrivals are shed until the breaker cools down (payload:
    /// tenant id).
    CircuitOpen,
    /// The blocked backend materialized one BCSR tile from the CSR fibers
    /// (payload: `block_row << 32 | block_col`).
    TileExtract,
    /// A SAM-style stream node produced a token
    /// (payload: `node << 32 | tokens produced by that node so far`).
    StreamToken,
    /// A SAM-style merger spent a cycle stalled — an input ran dry while
    /// upstream was still live, or the output queue was full
    /// (payload: node id).
    MergerStall,
    /// A format-conversion routine re-marshaled a tensor between physical
    /// layouts (payload: `src format << 32 | dst format`, indexes into the
    /// formats crate's kind order).
    FormatConvert,
    /// The format autotuner committed a per-input layout decision
    /// (payload: `picked format << 32 | stored nnz`, clamped).
    AutotunePick,
    /// An application pipeline stage was dispatched onto a serving slot
    /// (payload: `tenant << 32 | job id`).
    StageStart,
    /// An application pipeline stage drained and its output tensor was
    /// materialized (payload: `tenant << 32 | job id`).
    StageDone,
    /// A pipeline stage's input tensor was served from the two-level
    /// build cache instead of regenerated (payload: tenant id).
    TensorCacheHit,

    // -- counter samples (serving layer) --
    /// Jobs waiting in one tenant's admission queue (sampled by the
    /// serving layer's queue-depth sampler; payload: depth).
    QueueDepth,

    // -- duration events (payload: `pack_dur_extra`) --
    /// A TU issued a new cacheline fetch; the duration is the memory
    /// latency, the extra word is `layer << 8 | lane`.
    TuFetch,
    /// A traversal-group step completed (1-cycle duration; the extra word
    /// is `layer << 8 | fsm-state` with 0 gbeg, 1 gite, 2 gend, 3 skip).
    TgStep,
    /// An outQ chunk was written (duration: open → sealed; extra: chunk id).
    ChunkWrite,
    /// An outQ chunk was consumed (duration: sealed → acked; extra:
    /// chunk id).
    ChunkRead,

    // -- counter samples (payload: the sampled value) --
    /// Entries in the engine's currently-open outQ chunk.
    OutQOccupancy,
    /// Unacked sealed outQ chunks (double-buffer pressure, 0–2).
    OutQChunksAhead,
    /// Busy slots in the accelerator's outstanding-request pool.
    MshrBusy,
    /// DRAM banks holding an open row.
    DramOpenRows,
}

impl EventKind {
    /// Whether the payload is a [`pack_dur_extra`] duration word.
    pub fn is_duration(self) -> bool {
        matches!(
            self,
            EventKind::TuFetch | EventKind::TgStep | EventKind::ChunkWrite | EventKind::ChunkRead
        )
    }

    /// Whether the payload is a sampled counter value.
    pub fn is_counter_sample(self) -> bool {
        matches!(
            self,
            EventKind::OutQOccupancy
                | EventKind::OutQChunksAhead
                | EventKind::MshrBusy
                | EventKind::DramOpenRows
                | EventKind::QueueDepth
        )
    }

    /// The stable display name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheMerge => "cache_merge",
            EventKind::DramRowOpen => "dram_row_open",
            EventKind::DramRowHit => "dram_row_hit",
            EventKind::LsqStall => "lsq_stall",
            EventKind::StallClass => "stall_class",
            EventKind::OutQPush => "outq_push",
            EventKind::OutQFull => "outq_full",
            EventKind::LayerTransition => "layer_transition",
            EventKind::CtxSave => "ctx_save",
            EventKind::CtxRestore => "ctx_restore",
            EventKind::FaultInjected => "fault_injected",
            EventKind::TrapRaised => "trap_raised",
            EventKind::WatchdogFired => "watchdog_fired",
            EventKind::TenantDispatch => "tenant_dispatch",
            EventKind::TenantPreempt => "tenant_preempt",
            EventKind::TenantComplete => "tenant_complete",
            EventKind::TenantReject => "tenant_reject",
            EventKind::SlotCrash => "slot_crash",
            EventKind::JobRetry => "job_retry",
            EventKind::CheckpointSave => "checkpoint_save",
            EventKind::DeadlineMiss => "deadline_miss",
            EventKind::CircuitOpen => "circuit_open",
            EventKind::TileExtract => "tile_extract",
            EventKind::StreamToken => "stream_token",
            EventKind::MergerStall => "merger_stall",
            EventKind::FormatConvert => "format_convert",
            EventKind::AutotunePick => "autotune_pick",
            EventKind::StageStart => "stage_start",
            EventKind::StageDone => "stage_done",
            EventKind::TensorCacheHit => "tensor_cache_hit",
            EventKind::QueueDepth => "queue_depth",
            EventKind::TuFetch => "tu_fetch",
            EventKind::TgStep => "tg_step",
            EventKind::ChunkWrite => "chunk_write",
            EventKind::ChunkRead => "chunk_read",
            EventKind::OutQOccupancy => "outq_occupancy",
            EventKind::OutQChunksAhead => "outq_chunks_ahead",
            EventKind::MshrBusy => "mshr_busy",
            EventKind::DramOpenRows => "dram_open_rows",
        }
    }
}

/// Packs a duration event's payload: duration in the low 32 bits (clamped),
/// a kind-specific extra word in the high 32.
pub fn pack_dur_extra(dur: u64, extra: u32) -> u64 {
    (u64::from(extra) << 32) | dur.min(u64::from(u32::MAX))
}

/// Splits a [`pack_dur_extra`] payload back into `(duration, extra)`.
pub fn unpack_dur_extra(payload: u64) -> (u64, u32) {
    (payload & 0xFFFF_FFFF, (payload >> 32) as u32)
}

/// One traced occurrence: when, where, what, and a kind-specific payload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Id of the emitting component (index into the tracer's registry).
    pub component: u32,
    /// Event kind (also selects the payload interpretation).
    pub kind: EventKind,
    /// Kind-specific payload word.
    pub payload: u64,
}

/// A bounded, preallocated event buffer with drop counting.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` events; the full backing store
    /// is allocated here, up front.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Records an event. Never allocates: once the ring is full the event
    /// is dropped and counted instead.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.buf
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity chosen at construction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            component: 0,
            kind: EventKind::CacheHit,
            payload: cycle * 3,
        }
    }

    #[test]
    fn overflow_counts_drops_without_reallocating() {
        let mut r = EventRing::new(8);
        let base = r.buf.as_ptr();
        let cap = r.buf.capacity();
        for i in 0..100 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 8, "ring must stay bounded");
        assert_eq!(r.dropped(), 92);
        assert_eq!(r.capacity(), 8);
        // The backing allocation made at construction is still the one in
        // use: no growth, no reallocation on the hot path.
        assert_eq!(r.buf.capacity(), cap);
        assert_eq!(r.buf.as_ptr(), base);
        // The retained events are the earliest ones, in order.
        assert_eq!(r.events()[0].cycle, 0);
        assert_eq!(r.events()[7].cycle, 7);
    }

    #[test]
    fn duration_payload_roundtrip() {
        let p = pack_dur_extra(1234, 0x0203);
        assert_eq!(unpack_dur_extra(p), (1234, 0x0203));
        // Durations clamp instead of corrupting the extra word.
        let p = pack_dur_extra(u64::MAX, 7);
        assert_eq!(unpack_dur_extra(p), (u64::from(u32::MAX), 7));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
