//! Architect's view: sweep the TMU design space (lanes × storage), watch
//! the performance/area trade-off, and save/restore engine context across
//! a simulated context switch (§5.6, §7.2, Figure 14).
//!
//! Run with:
//! ```sh
//! cargo run --release --example design_space
//! ```

use std::sync::Arc;

use tmu::{area::area, context::ContextSnapshot, Interp, TmuConfig};
use tmu_kernels::spmv::Spmv;
use tmu_kernels::workload::Workload;
use tmu_sim::configs;
use tmu_tensor::gen;

fn main() {
    let a = gen::uniform(8192, 32_768, 8, 0xDE5);
    let w = Spmv::new(&a);
    let base = w.run_baseline(configs::neoverse_n1_system()).cycles;

    println!(
        "SpMV design-space sweep ({} nnz), speedup over the software baseline:",
        a.nnz()
    );
    println!(
        "{:<18}{:>10}{:>12}{:>14}",
        "config", "speedup", "area(mm2)", "% of N1 core"
    );
    for sve in [128u32, 256, 512] {
        for kb in [4usize, 16] {
            let tmu = TmuConfig::paper()
                .for_sve_bits(sve)
                .with_total_storage(kb << 10);
            let sys = configs::neoverse_n1_with_sve(sve);
            let run = w.run_tmu(sys, tmu);
            let ar = area(&tmu);
            println!(
                "{:<18}{:>9.2}x{:>12.4}{:>13.2}%",
                format!("{} lanes, {:>2} KB", tmu.lanes, kb),
                base as f64 / run.stats.cycles as f64,
                ar.total_mm2,
                ar.percent_of_n1_core
            );
        }
    }

    // ------------------------------------------------------------------
    // Context switch: quiesce mid-traversal, snapshot, restore, finish —
    // results must be identical to an uninterrupted run.
    // ------------------------------------------------------------------
    let program = Arc::new(w.build_program((0, 512), 8));
    let image = w.image_handle();
    let mut uninterrupted = Vec::new();
    tmu::for_each_entry(&program, &image, |e| uninterrupted.push(e.clone()));

    let mut interp = Interp::new(Arc::clone(&program), Arc::clone(&image));
    let mut entries = Vec::new();
    for _ in 0..100 {
        if let Some(step) = interp.next_step() {
            entries.extend(step.entries);
        }
    }
    let snapshot = ContextSnapshot::save(TmuConfig::paper(), &program, 100, entries.len() as u64);
    println!();
    println!(
        "context switch after 100 steps: saved {} bytes of architectural state surrogate",
        std::mem::size_of_val(&snapshot)
    );
    let mut restored = snapshot.restore(image);
    while let Some(step) = restored.next_step() {
        entries.extend(step.entries);
    }
    assert_eq!(entries, uninterrupted, "restore must be transparent");
    println!(
        "restored engine produced the remaining {} outQ entries — streams identical ✓",
        uninterrupted.len()
    );
}
