//! Hardware merging lab: the Figure 2 semantics, SpKAdd, and triangle
//! counting — the workloads where the TMU's in-hardware mergers shine.
//!
//! Run with:
//! ```sh
//! cargo run --release --example merge_lab
//! ```

use tmu::TmuConfig;
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::trianglecount::TriangleCount;
use tmu_kernels::workload::Workload;
use tmu_sim::configs;
use tmu_tensor::gen;
use tmu_tensor::merge::{ConjunctiveMerge, DisjunctiveMerge, FiberSlice};

fn main() {
    // ------------------------------------------------------------------
    // 1. The Figure 2 fibers, merged both ways (reference semantics the
    //    TMU's traversal groups are tested against).
    // ------------------------------------------------------------------
    let (ai, av) = (vec![0u32, 2, 5], vec![1.0, 2.0, 5.0]);
    let (bi, bv) = (vec![2u32, 3, 5], vec![3.0, 4.0, 6.0]);
    println!("fiber A: idx {ai:?}  fiber B: idx {bi:?}");
    let dis: Vec<_> =
        DisjunctiveMerge::new(vec![FiberSlice::new(&ai, &av), FiberSlice::new(&bi, &bv)])
            .map(|item| (item.coord, format!("{:02b}", item.mask), item.sum()))
            .collect();
    println!("  disjunctive (union):       {dis:?}");
    let con: Vec<_> =
        ConjunctiveMerge::new(vec![FiberSlice::new(&ai, &av), FiberSlice::new(&bi, &bv)])
            .map(|item| (item.coord, item.product()))
            .collect();
    println!("  conjunctive (intersection): {con:?}");

    let cfg = configs::neoverse_n1_system();
    let tmu = TmuConfig::paper();

    // ------------------------------------------------------------------
    // 2. SpKAdd: eight DCSR matrices disjunctively merged in hardware,
    //    hierarchically over both compressed dimensions.
    // ------------------------------------------------------------------
    let a = gen::uniform(8192, 1024, 6, 0x5AD);
    let w = Spkadd::new(&a);
    w.verify().expect("TMU SpKAdd matches the reference");
    let base = w.run_baseline(cfg);
    let run = w.run_tmu(cfg, tmu);
    println!();
    println!(
        "SpKAdd (k=8, {} output nnz): baseline {} cyc, TMU {} cyc → {:.2}x",
        w.reference().nnz(),
        base.cycles,
        run.stats.cycles,
        base.cycles as f64 / run.stats.cycles as f64
    );
    let (_, bf, _) = base.breakdown();
    let (_, tf, _) = run.stats.breakdown();
    println!(
        "  baseline frontend stalls {:.0}% → TMU {:.0}% (merging branches offloaded)",
        bf * 100.0,
        tf * 100.0
    );

    // ------------------------------------------------------------------
    // 3. Triangle counting: conjunctive merging (set intersection) in
    //    hardware; the core only counts the matches.
    // ------------------------------------------------------------------
    let g = gen::rmat(12, 32_768, 0x7C1);
    let w = TriangleCount::new(&g);
    w.verify().expect("TMU TC matches the reference");
    let base = w.run_baseline(cfg);
    let run = w.run_tmu(cfg, tmu);
    println!();
    println!(
        "TriangleCount ({} triangles): baseline {} cyc, TMU {} cyc → {:.2}x",
        w.reference(),
        base.cycles,
        run.stats.cycles,
        base.cycles as f64 / run.stats.cycles as f64
    );
    println!(
        "  core ops: baseline {} → TMU {} ({}x less core work)",
        base.total().committed,
        run.stats.total().committed,
        base.total().committed / run.stats.total().committed.max(1)
    );
}
