//! Quickstart: program the TMU for SpMV, run it functionally, then run a
//! full cycle-accurate comparison against the vectorized software
//! baseline on the paper's simulated 8-core system.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use tmu::{Event, LayerMode, MemImage, ProgramBuilder, StreamTy, TmuConfig};
use tmu_kernels::spmv::Spmv;
use tmu_kernels::workload::Workload;
use tmu_sim::{configs, AddressMap};
use tmu_tensor::{gen, CooMatrix, CsrMatrix};

fn main() {
    // ------------------------------------------------------------------
    // 1. The Figure 1 matrix, by hand.
    // ------------------------------------------------------------------
    let coo = CooMatrix::from_triplets(
        4,
        4,
        vec![
            (0, 0, 1.0),
            (0, 2, 2.0),
            (2, 1, 3.0),
            (3, 0, 4.0),
            (3, 3, 5.0),
        ],
    )
    .expect("valid triplets");
    let a = CsrMatrix::from_coo(&coo);
    println!("Figure 1 CSR: row_ptrs = {:?}", a.row_ptrs());

    // ------------------------------------------------------------------
    // 2. Program a 2-lane TMU for SpMV (the Figure 8 code) and execute it
    //    functionally: the outQ entry stream drives plain Rust callbacks.
    // ------------------------------------------------------------------
    let mut map = AddressMap::new();
    let ptrs_r = map.alloc_elems("ptrs", 5, 4);
    let idxs_r = map.alloc_elems("idxs", 5, 4);
    let vals_r = map.alloc_elems("vals", 5, 8);
    let b_r = map.alloc_elems("b", 4, 8);
    let mut image = MemImage::new();
    image.bind_u32(ptrs_r, Arc::new(a.row_ptrs().to_vec()));
    image.bind_u32(idxs_r, Arc::new(a.col_idxs().to_vec()));
    image.bind_f64(vals_r, Arc::new(a.vals().to_vec()));
    image.bind_f64(b_r, Arc::new(vec![10.0, 20.0, 30.0, 40.0]));

    let mut b = ProgramBuilder::new();
    let l0 = b.layer(LayerMode::Single);
    let row = b.dns_fbrt(l0, 0, 4, 1);
    let ptbs = b.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
    let ptes = b.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
    let l1 = b.layer(LayerMode::LockStep);
    let mut nnz = Vec::new();
    let mut vecv = Vec::new();
    for lane in 0..2 {
        let col = b.rng_fbrt(l1, ptbs, ptes, lane, 2);
        let ci = b.mem_stream(col, idxs_r.base, 4, StreamTy::Index);
        nnz.push(b.mem_stream(col, vals_r.base, 8, StreamTy::Value));
        vecv.push(b.mem_stream_indexed(col, b_r.base, 8, StreamTy::Value, ci));
    }
    let nnz_op = b.vec_operand(l1, &nnz);
    let vec_op = b.vec_operand(l1, &vecv);
    b.callback(l1, Event::Ite, 0, &[nnz_op, vec_op]); // ri (Figure 6)
    b.callback(l1, Event::End, 1, &[]); // re
    let program = Arc::new(b.build().expect("well-formed"));
    let image = Arc::new(image);

    let mut x = Vec::new();
    let mut sum = 0.0;
    tmu::for_each_entry(&program, &image, |entry| match entry.callback {
        0 => {
            let n = entry.operands[0].as_f64s();
            let v = entry.operands[1].as_f64s();
            sum += n.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
        }
        _ => {
            x.push(sum);
            sum = 0.0;
        }
    });
    println!("TMU functional SpMV: x = {x:?} (expect [70, 0, 60, 240])");
    assert_eq!(x, vec![70.0, 0.0, 60.0, 240.0]);

    // ------------------------------------------------------------------
    // 3. Full timing comparison on the Table 5 system: baseline core vs
    //    core + TMU, on a larger scattered matrix.
    // ------------------------------------------------------------------
    let big = gen::uniform(8192, 65_536, 8, 42);
    let workload = Spmv::new(&big);
    workload.verify().expect("TMU matches the reference");

    let cfg = configs::neoverse_n1_system();
    let base = workload.run_baseline(cfg);
    let run = workload.run_tmu(cfg, TmuConfig::paper());
    let (bc, bf, bb) = base.breakdown();
    let (tc, tf, tb) = run.stats.breakdown();
    println!();
    println!(
        "SpMV on a {}x{} matrix ({} nnz), 8 simulated cores:",
        big.rows(),
        big.cols(),
        big.nnz()
    );
    println!(
        "  baseline: {:>9} cycles  (commit {:.0}% / frontend {:.0}% / backend {:.0}%)  {:.1} GB/s",
        base.cycles,
        bc * 100.0,
        bf * 100.0,
        bb * 100.0,
        base.bandwidth_gbs()
    );
    println!(
        "  with TMU: {:>9} cycles  (commit {:.0}% / frontend {:.0}% / backend {:.0}%)  {:.1} GB/s",
        run.stats.cycles,
        tc * 100.0,
        tf * 100.0,
        tb * 100.0,
        run.stats.bandwidth_gbs()
    );
    println!(
        "  speedup: {:.2}x   (outQ read-to-write ratio {:.2})",
        base.cycles as f64 / run.stats.cycles as f64,
        run.read_to_write_ratio()
    );
}
