//! Tensor-analytics pipeline: factorize an event tensor with CP-ALS,
//! the paper's end-to-end application (GenTen-style, §6).
//!
//! Models the Chicago-crime scenario of the FROSTT inputs: an
//! (area × hour × type) count tensor is decomposed into rank-16 factors;
//! each ALS sweep runs one MTTKRP per mode — the kernels the TMU
//! accelerates — plus a dense solve that stays on the core, which is why
//! near-core marshaling beats a standalone accelerator here (§8).
//!
//! Run with:
//! ```sh
//! cargo run --release --example tensor_pipeline
//! ```

use tmu::TmuConfig;
use tmu_kernels::cpals::CpAls;
use tmu_kernels::mttkrp::{Mttkrp, MttkrpVariant, RANK};
use tmu_kernels::workload::Workload;
use tmu_sim::configs;
use tmu_tensor::gen;

fn main() {
    // A synthetic event tensor in the LBNL-network shape (sender,
    // receiver, port): the factor matrices of the wide modes exceed the
    // 8 MiB LLC, which is where marshaling pays. (On toy tensors whose
    // factors sit in L1/L2, the plain core wins — try shrinking the dims!)
    let tensor = gen::random_tensor(&[4096, 4096, 49_152], 160_000, 0xC417);
    println!(
        "event tensor: {:?}, {} non-zeros, rank-{} decomposition",
        tensor.dims(),
        tensor.nnz(),
        RANK
    );

    let cfg = configs::neoverse_n1_system();
    let tmu = TmuConfig::paper();

    // Single MTTKRP first (both TMU parallelization schemes).
    for variant in [MttkrpVariant::Mp, MttkrpVariant::Cp] {
        let w = Mttkrp::new(&tensor, variant);
        w.verify().expect("TMU MTTKRP matches the reference");
        let base = w.run_baseline(cfg);
        let run = w.run_tmu(cfg, tmu);
        println!(
            "  {:<10} baseline {:>9} cyc | TMU {:>9} cyc | speedup {:.2}x | r2w {:.2}",
            w.name(),
            base.cycles,
            run.stats.cycles,
            base.cycles as f64 / run.stats.cycles as f64,
            run.read_to_write_ratio()
        );
    }

    // One full ALS sweep (three MTTKRPs + dense solves).
    let sweep = CpAls::new(&tensor);
    sweep.verify().expect("all three mode MTTKRPs verify");
    let base = sweep.run_baseline(cfg);
    let run = sweep.run_tmu(cfg, tmu);
    println!(
        "  {:<10} baseline {:>9} cyc | TMU {:>9} cyc | speedup {:.2}x",
        sweep.name(),
        base.cycles,
        run.stats.cycles,
        base.cycles as f64 / run.stats.cycles as f64,
    );
    println!("  (the dense Gram solves run on the core in both versions — partial-result");
    println!("   evaluation is exactly what standalone accelerators cannot interleave)");
}
