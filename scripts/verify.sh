#!/usr/bin/env bash
# Repo verification gate: formatting, lints, and the tier-1 suite.
# Run from the repo root. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== expression front-end: unit + differential + robustness suites =="
cargo test -q -p tmu-front

echo "== trace feature: build + test (keeps the gated code from rotting) =="
cargo build --release --features trace
cargo test -q -p tmu-trace
# Includes the traced-expression compose test (front-end × trace).
cargo test -q -p tmu-bench --features trace

echo "== fault model: differential resume suite + panic-free grid smoke =="
# clippy above already denies unwrap_used in sim/core (the #![warn] in
# each crate root is promoted by -D warnings); these run the resilience
# guarantees end-to-end.
cargo test -q --release --test fault_resilience
# A nonzero injection rate through the public harness must exit 0: every
# fault schedule is serviced (or degrades gracefully) and the deliberate
# panic is caught and typed.
TMU_FAULT_RATE=50 cargo run --release -q -p tmu-bench --bin faults

echo "== alternative backends: bit-identity suite + four-way matrix smoke =="
# Both engines (blocked-sve, sam-stream) must stay bit-identical to the
# kernel oracles and the tmu-front interpreter.
cargo test -q --release -p tmu-backends
# A reduced-scale four-way comparison (tmu/imp/blocked-sve/sam-stream)
# over SpMV plus the compiled expressions; exits nonzero if any cell
# panics, and writes schema-v3 rows to results/bench.json.
TMU_SCALE=0.05 cargo run --release -q -p tmu-bench --bin matrix -- spmv expr

echo "== formats: level round-trips, conversion faults, autotuner smoke =="
# Level-format proptests, conversion round-trips, the csr→banded TMU
# program under the fault grid, and the schema-v4 json pinning.
cargo test -q --release -p tmu-formats
# Reduced-scale autotuner ablation (best layout vs CSR-always over the
# Table 6 grid); exits nonzero if any pick or modeled run panics, and
# writes schema-v4 rows (figure "formats") to results/bench.json.
TMU_SCALE=0.05 cargo run --release -q -p tmu-bench --bin formats

echo "== serving layer: differential grid + two-tenant smoke (both policies) =="
cargo test -q --release -p tmu-serve
# A small contended trace under each policy; the serving DES is
# single-threaded, so the rows must come out deterministic.
TMU_SERVE_JOBS=12 TMU_TENANTS=2 TMU_POLICY=rr \
    cargo run --release -q -p tmu-bench --bin serve
TMU_SERVE_JOBS=12 TMU_TENANTS=2 TMU_POLICY=wf \
    cargo run --release -q -p tmu-bench --bin serve

echo "== resilience: chaos differential suite + grid smoke + knob-exercising serve =="
# Slot faults (crash/hang/degrade) × slot counts × policies: every
# admitted job completes with a bit-identical solo digest or lands in a
# typed terminal state, and admitted = completed + shed + failed holds
# exactly. Includes the proptest over random chaos schedules.
cargo test -q --release -p tmu-serve --test chaos
# Reduced grid through the standalone bin; exits nonzero on any
# LOST/DIVERGED cell or if no fault was injected anywhere.
TMU_SCALE=0.05 cargo run --release -q -p tmu-bench --bin chaos
# The serve bin's resilience knobs must parse and run end-to-end
# (validated through parse_pos_int like every other knob).
TMU_SERVE_JOBS=12 TMU_TENANTS=2 TMU_POLICY=edf \
    TMU_CHAOS=150 TMU_RETRY_BUDGET=5 TMU_CHECKPOINT_EVERY=600 \
    cargo run --release -q -p tmu-bench --bin serve

echo "== application pipelines: DAG suite + trace events + GNN/CG serve smoke =="
# The apps crate's DAG/executor/cache unit suites, then the served-DAG
# differential grid (policies x random quanta x chaos faults, every
# completion digest bit-identical to its solo run) and the
# StageStart/StageDone/TensorCacheHit trace-event pinning.
cargo test -q --release -p tmu-apps
cargo test -q --release -p tmu-serve --test apps --test trace_events
# Reduced-scale GNN + CG: solo stage breakdowns, then a served
# two-tenant mix whose digests are re-verified at bench time; exits
# nonzero on any divergence. Writes schema-v6 rows (figure "apps").
TMU_SCALE=0.05 cargo run --release -q -p tmu-bench --bin apps
# DAG jobs mixed into the synthetic serve trace with Poisson arrivals.
TMU_SERVE_JOBS=12 TMU_TENANTS=2 TMU_POLICY=wf \
    TMU_APPS=1 TMU_ARRIVALS=poisson \
    cargo run --release -q -p tmu-bench --bin serve

echo "verify.sh: all gates passed"
