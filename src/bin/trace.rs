//! Workspace-root `trace` bin, so the documented invocation works from
//! the repo root: `cargo run --release --features trace --bin trace --
//! spmv rmat tmu`. Same wrapper as `tmu-bench`'s — see
//! [`tmu_bench::tracecli`].

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tmu_bench::tracecli::main(&args)
}
