//! Workspace root crate for the TMU reproduction.
//!
//! This crate only re-exports the member crates so that the runnable
//! `examples/` and cross-crate integration `tests/` at the repository root
//! have a single dependency surface. The actual functionality lives in:
//!
//! * [`tmu_tensor`] — sparse tensor formats, merge semantics, generators;
//! * [`tmu_sim`] — the cycle-level multicore simulator substrate;
//! * [`tmu`] — the Tensor Marshaling Unit engine (the paper's contribution);
//! * [`tmu_kernels`] — the evaluated workloads (baseline and TMU-mapped).

pub use tmu;
pub use tmu_kernels;
pub use tmu_sim;
pub use tmu_tensor;
