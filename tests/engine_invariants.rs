//! Property tests over the TMU engine's step-stream invariants and its
//! end-to-end functional correctness on arbitrary inputs.

use std::sync::Arc;

use proptest::prelude::*;

use tmu::{Event, Interp, LayerMode, MemImage, ProgramBuilder, StepKind, StreamTy};
use tmu_sim::AddressMap;
use tmu_tensor::{CooMatrix, CsrMatrix};

/// An arbitrary small CSR matrix.
fn csr(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::btree_map((0..rows as u32, 0..cols as u32), 0.25f64..4.0, 0..rows * 3)
        .prop_map(move |m| {
            let triplets = m.into_iter().map(|((r, c), v)| (r, c, v)).collect();
            CsrMatrix::from_coo(&CooMatrix::from_triplets(rows, cols, triplets).expect("in range"))
        })
}

struct Fixture {
    program: Arc<tmu::Program>,
    image: Arc<MemImage>,
}

/// Builds the SpMV P1 program over `m` with `lanes` lanes.
fn spmv_fixture(m: &CsrMatrix, bvec: &[f64], lanes: usize) -> Fixture {
    let mut map = AddressMap::new();
    let ptrs_r = map.alloc_elems("p", m.row_ptrs().len(), 4);
    let idxs_r = map.alloc_elems("i", m.nnz().max(1), 4);
    let vals_r = map.alloc_elems("v", m.nnz().max(1), 8);
    let b_r = map.alloc_elems("b", bvec.len(), 8);
    let mut image = MemImage::new();
    image.bind_u32(ptrs_r, Arc::new(m.row_ptrs().to_vec()));
    image.bind_u32(idxs_r, Arc::new(m.col_idxs().to_vec()));
    image.bind_f64(vals_r, Arc::new(m.vals().to_vec()));
    image.bind_f64(b_r, Arc::new(bvec.to_vec()));
    let mut b = ProgramBuilder::new();
    let l0 = b.layer(LayerMode::Single);
    let row = b.dns_fbrt(l0, 0, m.rows() as i64, 1);
    let pb = b.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
    let pe = b.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
    let l1 = b.layer(LayerMode::LockStep);
    let mut nnz = Vec::new();
    let mut vecv = Vec::new();
    for lane in 0..lanes as i64 {
        let col = b.rng_fbrt(l1, pb, pe, lane, lanes as i64);
        let ci = b.mem_stream(col, idxs_r.base, 4, StreamTy::Index);
        nnz.push(b.mem_stream(col, vals_r.base, 8, StreamTy::Value));
        vecv.push(b.mem_stream_indexed(col, b_r.base, 8, StreamTy::Value, ci));
    }
    let nnz_op = b.vec_operand(l1, &nnz);
    let vec_op = b.vec_operand(l1, &vecv);
    b.callback(l1, Event::Ite, 0, &[nnz_op, vec_op]);
    b.callback(l1, Event::End, 1, &[]);
    Fixture {
        program: Arc::new(b.build().expect("well-formed")),
        image: Arc::new(image),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spmv_is_correct_for_any_matrix_and_lane_count(
        m in csr(24, 16),
        lanes in 1usize..=8,
    ) {
        let bvec: Vec<f64> = (0..16).map(|j| 1.0 + j as f64).collect();
        let fx = spmv_fixture(&m, &bvec, lanes);
        let mut x = Vec::new();
        let mut sum = 0.0;
        tmu::for_each_entry(&fx.program, &fx.image, |e| match e.callback {
            0 => {
                let n = e.operands[0].as_f64s();
                let v = e.operands[1].as_f64s();
                sum += n.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
            }
            _ => {
                x.push(sum);
                sum = 0.0;
            }
        });
        let want: Vec<f64> = (0..m.rows())
            .map(|i| m.row(i).map(|(c, v)| v * bvec[c as usize]).sum())
            .collect();
        prop_assert_eq!(x.len(), want.len());
        for (g, w) in x.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "{} vs {}", g, w);
        }
    }

    #[test]
    fn step_stream_invariants_hold(m in csr(24, 16), lanes in 1usize..=8) {
        let bvec: Vec<f64> = vec![1.0; 16];
        let fx = spmv_fixture(&m, &bvec, lanes);
        let mut interp = Interp::new(Arc::clone(&fx.program), Arc::clone(&fx.image));
        let mut open: Vec<i64> = vec![0; 2]; // per-layer Beg/End balance
        let mut last_ordinal: std::collections::HashMap<(u8, u8, u8), u64> =
            Default::default();
        let mut expected_id: u64 = 0;
        let mut total_ite_l1_consumed = 0usize;
        while let Some(step) = interp.next_step() {
            let l = step.layer as usize;
            match step.kind {
                StepKind::Beg => {
                    open[l] += 1;
                    // A layer can only begin while its parent is open.
                    if l > 0 {
                        prop_assert!(open[l - 1] > 0);
                    }
                }
                StepKind::End => {
                    open[l] -= 1;
                    prop_assert!(open[l] >= 0, "unbalanced End at layer {}", l);
                }
                StepKind::Ite | StepKind::Skip => {
                    prop_assert!(open[l] > 0, "Ite outside an open traversal");
                    prop_assert!(step.mask != 0, "Ite must have participants");
                    if step.kind == StepKind::Ite && l == 1 {
                        total_ite_l1_consumed += step.consumed.len();
                    }
                }
            }
            for ld in &step.loads {
                // Load ids are dense and in creation order.
                prop_assert_eq!(ld.id, expected_id);
                expected_id += 1;
                // Per-(TU, stream) ordinals are strictly increasing.
                let key = (ld.layer, ld.lane, ld.stream);
                if let Some(&prev) = last_ordinal.get(&key) {
                    prop_assert!(ld.elem_ordinal > prev);
                }
                last_ordinal.insert(key, ld.elem_ordinal);
                // Dependencies always point backwards.
                for &d in &ld.deps {
                    prop_assert!(d < ld.id);
                }
            }
        }
        // Every traversal that began also ended.
        prop_assert!(open.iter().all(|&o| o == 0));
        // Layer-1 Ite steps consumed exactly nnz elements in total.
        prop_assert_eq!(total_ite_l1_consumed, m.nnz());
    }

    #[test]
    fn entry_count_is_lane_invariant_only_in_sum(m in csr(24, 16)) {
        // The marshaled *work* (sum of active lanes over all ri entries)
        // equals nnz regardless of lane count; the entry count shrinks as
        // lanes grow.
        let bvec: Vec<f64> = vec![1.0; 16];
        let mut counts = Vec::new();
        for lanes in [1usize, 4, 8] {
            let fx = spmv_fixture(&m, &bvec, lanes);
            let entries = tmu::run_functional(&fx.program, &fx.image);
            let active: u32 = entries
                .iter()
                .filter(|e| e.callback == 0)
                .map(|e| e.mask.count_ones())
                .sum();
            prop_assert_eq!(active as usize, m.nnz());
            counts.push(entries.iter().filter(|e| e.callback == 0).count());
        }
        prop_assert!(counts[0] >= counts[1] && counts[1] >= counts[2]);
    }
}
