//! Differential fault-resilience suite (§5.6 quiesce/restore).
//!
//! The contract under test: **any** fault schedule — page faults with
//! precise traps and context restores, DRAM/NoC retries, forced
//! preemptions, injected outQ backpressure — may change *when* the TMU
//! engine makes progress, but never *what* it marshals. Every test runs
//! an engine fault-free, reruns it under injection, and requires the
//! recorded outQ entry stream to be bit-identical (`OutQEntry` equality:
//! callback ids, lane masks, and operand bytes).
//!
//! Covered: the five Table 4 kernels (SpMV, SpMSpV, SpMSpM, SpKAdd,
//! SpTTV) on a scripted kind × injection-point grid, two compiled
//! einsum expressions from the front-end, proptest-random rate-based
//! schedules on SpMV, graceful retirement on an unserviceable fault,
//! and the system watchdog firing on a wedged outQ consumer.

use std::sync::Arc;

use proptest::prelude::*;

use tmu::{
    CallbackHandler, FaultEvent, FaultKind, FaultPlan, FaultSpec, MemImage, OutQEntry, Program,
    TmuAccelerator, TmuConfig, TmuError,
};
use tmu_front::ExprWorkload;
use tmu_kernels::{spkadd::Spkadd, spmspm::Spmspm, spmspv::Spmspv, spmv::Spmv, spttv::Spttv};
use tmu_sim::{
    Accelerator, CoreConfig, MemSys, MemSysConfig, Op, OpId, OpKind, SimError, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::gen;

/// Records the marshaled outQ entry stream verbatim.
#[derive(Default)]
struct Recorder {
    entries: Vec<OutQEntry>,
}

impl CallbackHandler for Recorder {
    fn handle(&mut self, entry: &OutQEntry, _entry_load: OpId, _m: &mut VecMachine) {
        self.entries.push(entry.clone());
    }
}

/// One standalone engine over `prog`, with faults per `spec`.
fn recorder_accel(
    prog: &Arc<Program>,
    image: &Arc<MemImage>,
    outq_base: u64,
    spec: FaultSpec,
) -> TmuAccelerator<Recorder> {
    TmuAccelerator::new(
        TmuConfig::paper().with_faults(spec),
        Arc::clone(prog),
        Arc::clone(image),
        Recorder::default(),
        outq_base,
    )
}

/// Ticks the engine to completion against a private memory system,
/// acking each sealed chunk the cycle its `ChunkEnd` op drains — the
/// same consumption contract the full-system model follows.
fn drive(accel: &mut TmuAccelerator<Recorder>) -> u64 {
    let mut mem = MemSys::new(MemSysConfig::table5(1));
    let mut now = 0u64;
    let mut sink: Vec<Op> = Vec::new();
    while !accel.done() {
        accel.tick(now, 0, &mut mem);
        accel.drain_ops(&mut sink);
        for op in &sink {
            if let OpKind::ChunkEnd { chunk } = op.kind {
                accel.ack_chunk(chunk, now);
            }
        }
        sink.clear();
        now += 1;
        assert!(now < 20_000_000, "engine must terminate");
    }
    now
}

/// Scripted-grid differential check: one engine fault-free, then one
/// fresh engine per (fault kind × injection point), each required to
/// reproduce the fault-free entry stream bit-for-bit.
fn assert_schedule_immaterial(what: &str, prog: Arc<Program>, image: Arc<MemImage>, base: u64) {
    // Probe with an empty scripted plan: learns the clean entry stream,
    // the cycle count, and how many cachelines the engine really issues
    // (coalesced loads never reach the injector), so injection points
    // land on the live schedule instead of past its end.
    let mut probe = recorder_accel(&prog, &image, base, FaultSpec::none());
    probe.inject_fault_plan(FaultPlan::with_events(FaultSpec::with_rate(0, 0), vec![]));
    let clean_cycles = drive(&mut probe);
    let total_loads = probe
        .fault_plan()
        .expect("probe plan attached")
        .loads_seen();
    let clean = probe.handler().entries.clone();
    assert!(!clean.is_empty(), "{what}: fixture must marshal entries");
    assert!(total_loads > 4, "{what}: fixture must issue loads");

    let kinds = [
        FaultKind::PageFault,
        FaultKind::DramRetry,
        FaultKind::NocRetry,
        FaultKind::Preempt,
        FaultKind::OutQStall,
    ];
    for kind in kinds {
        for frac in [0u64, 1, 2, 3] {
            let event = match kind {
                // Cycle-triggered kinds spread over the clean runtime;
                // load-triggered kinds over the issued-load schedule.
                FaultKind::Preempt | FaultKind::OutQStall => {
                    FaultEvent::at_cycle((clean_cycles - 1) * frac / 3, kind)
                }
                _ => FaultEvent::at_load((total_loads - 1) * frac / 3, kind),
            };
            // `with_rate(0, 0)` injects nothing by rate but keeps the
            // workable service/retry defaults and an unlimited budget —
            // `none()` has a zero budget, which would retire the engine
            // on the first scripted page fault.
            let mut accel = recorder_accel(&prog, &image, base, FaultSpec::none());
            accel.inject_fault_plan(FaultPlan::with_events(
                FaultSpec::with_rate(0, 0),
                vec![event],
            ));
            drive(&mut accel);
            let stats = accel.fault_stats();
            assert!(
                stats.injected >= 1,
                "{what}: {} at point {frac} never injected",
                kind.name()
            );
            assert_eq!(
                accel.handler().entries,
                clean,
                "{what}: outQ diverged under {} at point {frac}",
                kind.name()
            );
        }
    }
}

#[test]
fn spmv_outq_is_fault_schedule_invariant() {
    let w = Spmv::new(&gen::uniform(96, 96, 4, 21));
    let prog = Arc::new(w.build_program((0, 96), 8));
    assert_schedule_immaterial("SpMV", prog, w.image_handle(), w.outq_base(0));
}

#[test]
fn spmspv_outq_is_fault_schedule_invariant() {
    let w = Spmspv::new(&gen::uniform(96, 96, 4, 22), 0.25);
    let prog = Arc::new(w.build_program((0, 96)));
    assert_schedule_immaterial("SpMSpV", prog, w.image_handle(), w.outq_base(0));
}

#[test]
fn spmspm_outq_is_fault_schedule_invariant() {
    let w = Spmspm::new(&gen::uniform(64, 64, 3, 23));
    let prog = Arc::new(w.build_program((0, 64), 8));
    assert_schedule_immaterial("SpMSpM", prog, w.image_handle(), w.outq_base(0));
}

#[test]
fn spkadd_outq_is_fault_schedule_invariant() {
    let w = Spkadd::new(&gen::uniform(128, 96, 3, 24));
    let out_rows = w.reference().rows();
    let prog = Arc::new(w.build_program((0, out_rows), 8));
    assert_schedule_immaterial("SpKAdd", prog, w.image_handle(), w.outq_base(0));
}

#[test]
fn spttv_outq_is_fault_schedule_invariant() {
    let w = Spttv::new(&gen::random_tensor(&[24, 24, 24], 600, 25));
    let prog = Arc::new(w.build_program((0, w.roots()), 8));
    assert_schedule_immaterial("SpTTV", prog, w.image_handle(), w.outq_base(0));
}

#[test]
fn compiled_expressions_are_fault_schedule_invariant() {
    for src in [
        "y(i) = A(i,j:csr) * x(j)",
        "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
    ] {
        let w = ExprWorkload::new(src, &gen::uniform(64, 48, 4, 31)).expect("compiles");
        let lowered = w.lowered(8).expect("lanes pre-validated");
        let prog = Arc::new(lowered.program);
        assert_schedule_immaterial(src, prog, w.image_handle(), w.outq_base());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random rate-based schedules through the *config* path (the same
    /// plumbing harness users reach via `TmuConfig::with_faults`): every
    /// seed/rate must reproduce the fault-free SpMV entry stream.
    #[test]
    fn random_fault_schedules_preserve_spmv_outq(
        seed in 1u64..u32::MAX as u64,
        rate in 500u32..25_000,
    ) {
        let w = Spmv::new(&gen::uniform(64, 64, 4, 19));
        let prog = Arc::new(w.build_program((0, 64), 8));
        let image = w.image_handle();
        let base = w.outq_base(0);
        let mut clean = recorder_accel(&prog, &image, base, FaultSpec::none());
        drive(&mut clean);
        let mut accel = recorder_accel(&prog, &image, base, FaultSpec::with_rate(seed, rate));
        drive(&mut accel);
        let stats = accel.fault_stats();
        prop_assert_eq!(&accel.handler().entries, &clean.handler().entries);
        prop_assert_eq!(stats.traps, stats.restores);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// §5.6 external snapshots are idempotent: nested save/restore
    /// cycles with no progress in between (a scheduler preempting a job
    /// the instant it resumes, repeatedly) and randomized back-to-back
    /// preemption quanta must neither perturb the marshaled stream nor
    /// drift the architectural context.
    #[test]
    fn nested_preemption_snapshots_are_idempotent(
        quanta in prop::collection::vec(50u64..3_000, 1..6),
        nested in 1usize..4,
    ) {
        let w = Spmv::new(&gen::uniform(64, 64, 4, 19));
        let prog = Arc::new(w.build_program((0, 64), 8));
        let image = w.image_handle();
        let base = w.outq_base(0);

        let mut clean = recorder_accel(&prog, &image, base, FaultSpec::none());
        drive(&mut clean);
        let clean_entries = clean.handler().entries.clone();

        let first = recorder_accel(&prog, &image, base, FaultSpec::none());
        let stats = first.stats_handle();
        let mut accel = first;
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut now = 0u64;
        let mut sink: Vec<Op> = Vec::new();
        let mut switches = 0usize;
        loop {
            // One quantum, extended until the engine commits at least one
            // step since resume (the progress guarantee any preemptive
            // scheduler must provide).
            let quantum = quanta[switches % quanta.len()];
            let resumed_at = accel.steps_committed();
            let until = now + quantum;
            while !accel.done() && (now < until || accel.steps_committed() == resumed_at) {
                accel.tick(now, 0, &mut mem);
                accel.drain_ops(&mut sink);
                for op in &sink {
                    if let OpKind::ChunkEnd { chunk } = op.kind {
                        accel.ack_chunk(chunk, now);
                    }
                }
                sink.clear();
                now += 1;
                prop_assert!(now < 20_000_000, "preempted engine must terminate");
            }
            if accel.done() {
                break;
            }
            let mut snap = accel.quiesce(now, 0, &mut mem).expect("engine is live");
            accel.drain_ops(&mut sink);
            for op in &sink {
                if let OpKind::ChunkEnd { chunk } = op.kind {
                    accel.ack_chunk(chunk, now);
                }
            }
            sink.clear();
            prop_assert!(accel.parked(), "quiesced engine reports parked");
            let mut handler = accel.into_handler();
            // Nested preemptions: resume, then quiesce again before a
            // single tick. The re-captured context must be identical to
            // the one just restored — save/restore is a fixed point.
            for _ in 0..nested {
                let mut inner = TmuAccelerator::resume_from(
                    &snap,
                    Arc::clone(&image),
                    handler,
                    base,
                    Arc::clone(&stats),
                )
                .expect("snapshot restores");
                let resnap = inner.quiesce(now, 0, &mut mem).expect("fresh resume is live");
                prop_assert_eq!(resnap.steps_completed, snap.steps_completed);
                prop_assert_eq!(resnap.chunks_sealed, snap.chunks_sealed);
                prop_assert_eq!(resnap.entries_produced, snap.entries_produced);
                prop_assert_eq!(resnap.tenant, snap.tenant);
                handler = inner.into_handler();
                snap = resnap;
            }
            accel = TmuAccelerator::resume_from(
                &snap,
                Arc::clone(&image),
                handler,
                base,
                Arc::clone(&stats),
            )
            .expect("snapshot restores");
            switches += 1;
        }
        prop_assert_eq!(&accel.handler().entries, &clean_entries);
        let st = stats.lock().expect("stats poisoned");
        prop_assert_eq!(st.entries, clean.stats().entries);
    }
}

#[test]
fn unserviceable_fault_retires_instead_of_wedging() {
    let w = Spmv::new(&gen::uniform(64, 64, 4, 19));
    let prog = Arc::new(w.build_program((0, 64), 8));
    let mut accel = recorder_accel(&prog, &w.image_handle(), w.outq_base(0), FaultSpec::none());
    accel.inject_fault_plan(FaultPlan::with_events(
        FaultSpec {
            max_serviced: 0,
            ..FaultSpec::none()
        },
        vec![FaultEvent::at_load(3, FaultKind::PageFault)],
    ));
    drive(&mut accel);
    assert!(
        matches!(
            accel.retired(),
            Some(TmuError::UnserviceableFault { limit: 0, .. })
        ),
        "engine must retire with the typed error, got {:?}",
        accel.retired()
    );
    assert_eq!(accel.fault_stats().unserviceable, 1);
}

/// A TMU engine whose outQ consumer is wedged: chunk acks never arrive,
/// so after two sealed chunks the double-buffer gate stalls the engine
/// forever. The system watchdog must convert that silent hang into a
/// typed error with a diagnostic dump.
struct WedgedConsumer(TmuAccelerator<Recorder>);

impl Accelerator for WedgedConsumer {
    fn tick(&mut self, now: u64, core: usize, mem: &mut MemSys) {
        self.0.tick(now, core, mem);
    }
    fn drain_ops(&mut self, _out: &mut Vec<Op>) {
        // The consumer is wedged: host ops (and their ChunkEnd acks)
        // never reach the core.
        let mut void = Vec::new();
        self.0.drain_ops(&mut void);
    }
    fn ack_chunk(&mut self, _chunk: u32, _now: u64) {}
    fn done(&self) -> bool {
        self.0.done()
    }
    fn status_line(&self) -> String {
        self.0.status_line()
    }
}

#[test]
fn watchdog_converts_a_wedged_outq_into_a_typed_error() {
    let w = Spmv::new(&gen::uniform(96, 96, 4, 21));
    let prog = Arc::new(w.build_program((0, 96), 8));
    let accel = recorder_accel(&prog, &w.image_handle(), w.outq_base(0), FaultSpec::none());
    let cfg = SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(1),
    };
    let mut sys = System::new(cfg);
    sys.set_watchdog(20_000);
    let err = sys
        .try_run_accelerated(vec![Box::new(WedgedConsumer(accel)) as Box<dyn Accelerator>])
        .expect_err("a wedged consumer must trip the watchdog");
    match err {
        SimError::Watchdog { window, dump, .. } => {
            assert_eq!(window, 20_000);
            assert!(dump.contains("tmu:"), "dump carries engine state: {dump}");
            assert!(dump.contains("core0:"), "dump carries core state: {dump}");
        }
        other => panic!("expected a watchdog error, got {other:?}"),
    }
}
