//! Integration test: the Figure 9 step-by-step example.
//!
//! SpMV with inner-loop vectorization (Table 4, P1) over the Figure 1
//! CSR matrix on a two-lane TMU — the exact walkthrough of §5.7 —
//! executed functionally, then through the full cycle-accurate system.

use std::sync::Arc;

use tmu::{Event, LayerMode, MemImage, ProgramBuilder, StreamTy, TmuConfig};
use tmu_kernels::spmv::Spmv;
use tmu_kernels::workload::Workload;
use tmu_sim::{configs, AddressMap, CoreConfig, MemSysConfig, System, SystemConfig};
use tmu_tensor::{CooMatrix, CsrMatrix};

fn figure1() -> CsrMatrix {
    CsrMatrix::from_coo(
        &CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 1, 3.0),
                (3, 0, 4.0),
                (3, 3, 5.0),
            ],
        )
        .expect("figure 1 triplets"),
    )
}

#[test]
fn functional_walkthrough_matches_figure9() {
    let a = figure1();
    let mut map = AddressMap::new();
    let ptrs_r = map.alloc_elems("ptrs", 5, 4);
    let idxs_r = map.alloc_elems("idxs", 5, 4);
    let vals_r = map.alloc_elems("vals", 5, 8);
    let b_r = map.alloc_elems("b", 4, 8);
    let mut image = MemImage::new();
    image.bind_u32(ptrs_r, Arc::new(a.row_ptrs().to_vec()));
    image.bind_u32(idxs_r, Arc::new(a.col_idxs().to_vec()));
    image.bind_f64(vals_r, Arc::new(a.vals().to_vec()));
    image.bind_f64(b_r, Arc::new(vec![10.0, 20.0, 30.0, 40.0]));

    let mut b = ProgramBuilder::new();
    let l0 = b.layer(LayerMode::Single);
    let row = b.dns_fbrt(l0, 0, 4, 1);
    let ptbs = b.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
    let ptes = b.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
    let l1 = b.layer(LayerMode::LockStep);
    let mut nnz = Vec::new();
    let mut vecv = Vec::new();
    for lane in 0..2 {
        let col = b.rng_fbrt(l1, ptbs, ptes, lane, 2);
        let ci = b.mem_stream(col, idxs_r.base, 4, StreamTy::Index);
        nnz.push(b.mem_stream(col, vals_r.base, 8, StreamTy::Value));
        vecv.push(b.mem_stream_indexed(col, b_r.base, 8, StreamTy::Value, ci));
    }
    let nnz_op = b.vec_operand(l1, &nnz);
    let vec_op = b.vec_operand(l1, &vecv);
    b.callback(l1, Event::Ite, 0, &[nnz_op, vec_op]);
    b.callback(l1, Event::End, 1, &[]);
    let program = Arc::new(b.build().expect("well-formed"));

    let entries = tmu::run_functional(&program, &Arc::new(image));
    // Row 0 marshals (a=1, b=2) against (b[0]=10, b[2]=30) in one lockstep
    // step, exactly as the Figure 9 trace shows.
    let first = &entries[0];
    assert_eq!(first.callback, 0);
    assert_eq!(first.mask, 0b11);
    assert_eq!(first.operands[0].as_f64s(), vec![1.0, 2.0]);
    assert_eq!(first.operands[1].as_f64s(), vec![10.0, 30.0]);
    // Stream totals: 3 ri steps (rows 0, 2, 3) + 4 re steps.
    assert_eq!(entries.iter().filter(|e| e.callback == 0).count(), 3);
    assert_eq!(entries.iter().filter(|e| e.callback == 1).count(), 4);
}

#[test]
fn timed_walkthrough_completes_on_the_full_system() {
    // The same program driven by the cycle-accurate engine + core.
    let a = figure1();
    let w = Spmv::new(&a);
    let cfg = SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(1),
    };
    let run = w.run_tmu(cfg, TmuConfig::paper());
    assert!(run.stats.cycles > 0);
    // 4 re entries + 3 ri entries marshaled in total.
    assert_eq!(run.outq.iter().map(|o| o.entries).sum::<u64>(), 7);
    w.verify().expect("figure 1 SpMV verifies");
}

#[test]
fn eight_core_system_runs_the_paper_configuration() {
    let a = tmu_tensor::gen::uniform(1024, 1024, 6, 3);
    let w = Spmv::new(&a);
    let run = w.run_tmu(configs::neoverse_n1_system(), TmuConfig::paper());
    assert_eq!(run.stats.cores.len(), 8);
    assert!(run.outq.iter().filter(|o| o.entries > 0).count() >= 4);
    let _ = System::new(configs::neoverse_n1_system()); // Table 5 builds
}
