//! Property tests over the tensor-format substrate: conversions between
//! formats are lossless, and the level-format storage rules of §2.2 hold.

use proptest::prelude::*;

use tmu_tensor::level::MatrixStorageReport;
use tmu_tensor::{CooMatrix, CooTensor, CsfTensor, CsrMatrix, DcsrMatrix};

fn triplets() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::btree_map((0u32..48, 0u32..48), 0.25f64..4.0, 0..160)
        .prop_map(|m| m.into_iter().map(|((r, c), v)| (r, c, v)).collect())
}

fn tensor_entries() -> impl Strategy<Value = Vec<(Vec<u32>, f64)>> {
    proptest::collection::btree_map((0u32..12, 0u32..12, 0u32..12), 0.25f64..4.0, 0..120).prop_map(
        |m| {
            m.into_iter()
                .map(|((a, b, c), v)| (vec![a, b, c], v))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_roundtrips_coo(ts in triplets()) {
        let coo = CooMatrix::from_triplets(48, 48, ts).expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(csr.to_coo(), coo);
    }

    #[test]
    fn dcsr_roundtrips_csr(ts in triplets()) {
        let coo = CooMatrix::from_triplets(48, 48, ts).expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        let dcsr = DcsrMatrix::from_csr(&csr);
        // DCSR never stores more row-structure words than rows+1.
        prop_assert!(dcsr.num_stored_rows() <= csr.rows());
        prop_assert_eq!(dcsr.to_csr(), csr);
    }

    #[test]
    fn transpose_is_involutive_and_preserves_nnz(ts in triplets()) {
        let coo = CooMatrix::from_triplets(48, 48, ts).expect("in range");
        let csr = CsrMatrix::from_coo(&coo);
        let t = csr.transpose();
        prop_assert_eq!(t.nnz(), csr.nnz());
        prop_assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn csf_roundtrips_coo_tensor(entries in tensor_entries()) {
        let coo = CooTensor::from_entries(vec![12, 12, 12], entries).expect("in range");
        let csf = CsfTensor::from_coo(&coo);
        prop_assert_eq!(csf.to_coo(), coo.clone());
        prop_assert_eq!(csf.nnz(), coo.nnz());
        // Level node counts shrink monotonically toward the root.
        if csf.nnz() > 0 {
            prop_assert!(csf.num_nodes(0) <= csf.num_nodes(1));
            prop_assert!(csf.num_nodes(1) <= csf.num_nodes(2));
        }
    }

    #[test]
    fn storage_rules_of_section_2_2(ts in triplets()) {
        let coo = CooMatrix::from_triplets(48, 48, ts).expect("in range");
        let report = MatrixStorageReport::measure(&coo);
        // CSR beats COO exactly when #nnz > #rows + 1 (§2.2).
        if coo.nnz() > 48 + 1 {
            prop_assert!(report.csr_words < report.coo_words);
        }
        // DCSR always beats CSR when over half the rows are empty.
        let csr = CsrMatrix::from_coo(&coo);
        if 48 > 2 * csr.nonempty_rows() + 3 {
            prop_assert!(report.dcsr_words < report.csr_words);
        }
    }

    #[test]
    fn generators_produce_valid_sorted_csr(seed in 0u64..1000) {
        let m = tmu_tensor::gen::uniform(64, 64, 4, seed);
        // from_parts re-validates every invariant (sortedness, bounds).
        let rebuilt = CsrMatrix::from_parts(
            m.rows(),
            m.cols(),
            m.row_ptrs().to_vec(),
            m.col_idxs().to_vec(),
            m.vals().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
    }
}
