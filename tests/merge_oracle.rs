//! Property tests: the TMU's hardware merge semantics must equal the
//! reference fiber-merge iterators of `tmu-tensor` on arbitrary fibers.

use std::sync::Arc;

use proptest::prelude::*;

use tmu::{Event, LayerMode, MemImage, ProgramBuilder, StreamTy};
use tmu_sim::AddressMap;
use tmu_tensor::merge::{ConjunctiveMerge, DisjunctiveMerge, FiberSlice};

/// Builds a k-lane single-layer merge program over the given fibers and
/// returns the (coord, mask, per-lane values) triples it marshals.
fn run_tmu_merge(fibers: &[(Vec<u32>, Vec<f64>)], conjunctive: bool) -> Vec<(i64, u64, Vec<f64>)> {
    let mut map = AddressMap::new();
    let mut image = MemImage::new();
    let mut regions = Vec::new();
    for (n, (idxs, vals)) in fibers.iter().enumerate() {
        let ir = map.alloc_elems(&format!("i{n}"), idxs.len().max(1), 4);
        let vr = map.alloc_elems(&format!("v{n}"), vals.len().max(1), 8);
        image.bind_u32(ir, Arc::new(idxs.clone()));
        image.bind_f64(vr, Arc::new(vals.clone()));
        regions.push((ir, vr));
    }
    let mut b = ProgramBuilder::new();
    let l0 = b.layer(if conjunctive {
        LayerMode::ConjMrg
    } else {
        LayerMode::DisjMrg
    });
    let mut keys = Vec::new();
    let mut vals = Vec::new();
    for (n, (idxs, _)) in fibers.iter().enumerate() {
        let tu = b.dns_fbrt(l0, 0, idxs.len() as i64, 1);
        let k = b.mem_stream(tu, regions[n].0.base, 4, StreamTy::Index);
        vals.push(b.mem_stream(tu, regions[n].1.base, 8, StreamTy::Value));
        b.set_key(tu, k);
        keys.push(k);
    }
    let key_op = b.vec_operand(l0, &keys);
    let val_op = b.vec_operand(l0, &vals);
    b.callback(l0, Event::Ite, 0, &[key_op, val_op]);
    let prog = Arc::new(b.build().expect("merge program"));
    tmu::run_functional(&prog, &Arc::new(image))
        .into_iter()
        .map(|e| {
            let first = e.mask.trailing_zeros() as usize;
            (
                e.operands[0].as_indexes()[first],
                e.mask,
                e.operands[1].as_f64s(),
            )
        })
        .collect()
}

/// Strategy: a sorted, deduplicated fiber of up to 24 elements.
fn fiber() -> impl Strategy<Value = (Vec<u32>, Vec<f64>)> {
    proptest::collection::btree_set(0u32..64, 0..24).prop_map(|set| {
        let idxs: Vec<u32> = set.into_iter().collect();
        let vals: Vec<f64> = idxs.iter().map(|&i| 1.0 + i as f64).collect();
        (idxs, vals)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disjunctive_merge_matches_reference(fibers in proptest::collection::vec(fiber(), 1..6)) {
        let got = run_tmu_merge(&fibers, false);
        let slices: Vec<FiberSlice> = fibers
            .iter()
            .map(|(i, v)| FiberSlice::new(i, v))
            .collect();
        let want: Vec<(i64, u64, Vec<f64>)> = DisjunctiveMerge::new(slices)
            .map(|item| (item.coord as i64, item.mask, item.vals))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn conjunctive_merge_matches_reference(fibers in proptest::collection::vec(fiber(), 1..5)) {
        let got = run_tmu_merge(&fibers, true);
        let slices: Vec<FiberSlice> = fibers
            .iter()
            .map(|(i, v)| FiberSlice::new(i, v))
            .collect();
        let want: Vec<(i64, u64, Vec<f64>)> = ConjunctiveMerge::new(slices)
            .map(|item| (item.coord as i64, item.mask, item.vals))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn disjunctive_output_is_sorted_and_complete(fibers in proptest::collection::vec(fiber(), 1..6)) {
        let got = run_tmu_merge(&fibers, false);
        // Sorted, unique coordinates.
        for w in got.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // Every input coordinate appears exactly once.
        let total_distinct: std::collections::BTreeSet<u32> = fibers
            .iter()
            .flat_map(|(i, _)| i.iter().copied())
            .collect();
        prop_assert_eq!(got.len(), total_distinct.len());
    }
}
