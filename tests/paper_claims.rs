//! Integration tests pinning the paper's quantitative claims that this
//! reproduction commits to exactly (configuration and area), plus the
//! qualitative behaviours its evaluation narrative rests on.

use tmu::{area::area, TmuConfig};
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::spmv::Spmv;
use tmu_kernels::trianglecount::TriangleCount;
use tmu_kernels::workload::Workload;
use tmu_sim::{configs, CoreConfig, MemSysConfig, SystemConfig};
use tmu_tensor::gen;

fn two_cores() -> SystemConfig {
    SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(2),
    }
}

#[test]
fn rtl_area_figures_reproduce() {
    // §6: 0.0704 mm² total, 0.0080 mm² per lane, 1.52 % of an N1 core.
    let r = area(&TmuConfig::paper());
    assert!((r.total_mm2 - 0.0704).abs() < 1e-4);
    assert!((r.lane_mm2 - 0.0080).abs() < 1e-4);
    assert!((r.percent_of_n1_core - 1.52).abs() < 0.01);
}

#[test]
fn table5_system_parameters() {
    let cfg = configs::neoverse_n1_system();
    assert_eq!(cfg.cores(), 8);
    assert_eq!(cfg.core.rob, 224);
    assert_eq!((cfg.core.lq, cfg.core.sq), (96, 96));
    assert_eq!(cfg.core.sve_bits, 512);
    assert_eq!(cfg.mem.dram.channels, 4);
    // 4 × 37.5 GB/s = 150 GB/s peak.
    let peak = cfg.mem.dram.peak_bytes_per_cycle() * cfg.core.freq_ghz;
    assert!((peak - 150.0).abs() < 1.0, "peak = {peak} GB/s");
    let tmu = TmuConfig::paper();
    assert_eq!(
        (tmu.lanes, tmu.per_lane_bytes, tmu.groups, tmu.outstanding),
        (8, 2048, 4, 128)
    );
}

#[test]
fn tmu_reduces_backend_stalls_on_spmv() {
    // §7.1: "the TMU drastically reduces backend stalls … and a sharp
    // reduction in load-to-use latency".
    let w = Spmv::new(&gen::uniform(4096, 32_768, 8, 5));
    let base = w.run_baseline(two_cores());
    let run = w.run_tmu(two_cores(), TmuConfig::paper());
    let (_, _, b_backend) = base.breakdown();
    let (_, _, t_backend) = run.stats.breakdown();
    assert!(
        t_backend < b_backend / 2.0,
        "backend stalls must collapse: {b_backend:.2} → {t_backend:.2}"
    );
    assert!(
        run.stats.avg_load_to_use() < base.avg_load_to_use() / 2.0,
        "load-to-use must drop sharply: {:.0} → {:.0}",
        base.avg_load_to_use(),
        run.stats.avg_load_to_use()
    );
}

#[test]
fn tmu_raises_bandwidth_utilization_on_spmv() {
    // Figure 12b: the TMU lifts SpMV close to the bandwidth roof.
    let w = Spmv::new(&gen::uniform(4096, 65_536, 8, 9));
    let base = w.run_baseline(configs::neoverse_n1_system());
    let run = w.run_tmu(configs::neoverse_n1_system(), TmuConfig::paper());
    assert!(
        run.stats.bandwidth_gbs() > 1.5 * base.bandwidth_gbs(),
        "TMU must use much more bandwidth: {:.1} vs {:.1} GB/s",
        run.stats.bandwidth_gbs(),
        base.bandwidth_gbs()
    );
}

#[test]
fn tmu_removes_merge_work_from_the_core() {
    // §7.1 (TC): frontend stalls nearly eliminated, committed ops slashed.
    let w = TriangleCount::new(&gen::rmat(10, 8192, 11));
    let base = w.run_baseline(two_cores());
    let run = w.run_tmu(two_cores(), TmuConfig::paper());
    assert!(run.stats.total().committed * 4 < base.total().committed);
    assert!(
        run.stats.cycles * 2 < base.cycles,
        "TC speedup must exceed 2x"
    );
}

#[test]
fn multi_lane_beats_single_lane() {
    // §7.3 / Figure 15: the multi-lane TMU must clearly beat a
    // single-lane engine with the same storage on SpMV. The gap comes
    // from SIMD-friendly marshaling (one vector callback per 8 nnz vs a
    // scalar callback chain per nnz), so it shows wherever the engine is
    // not purely DRAM-bound — use a banded (cache-friendly) input.
    let w = Spmv::new(&gen::banded(16_384, 512, 16, 13));
    let cfg = two_cores();
    let multi = w.run_tmu(cfg, TmuConfig::paper());
    let single = w.run_tmu(cfg, TmuConfig::paper().single_lane());
    assert!(
        multi.stats.cycles * 6 < single.stats.cycles * 5,
        "8 lanes must beat 1 lane by ≥1.2x: {} vs {}",
        multi.stats.cycles,
        single.stats.cycles
    );
}

#[test]
fn imp_helps_spmv_but_less_than_the_tmu() {
    // Figure 15: IMP gives a modest SpMV speedup, below the TMU's.
    let w = Spmv::new(&gen::uniform(4096, 65_536, 8, 17));
    let cfg = two_cores();
    let base = w.run_baseline(cfg).cycles;
    let imp = w.run_baseline_imp(cfg).expect("SpMV supports IMP").cycles;
    let tmu = w.run_tmu(cfg, TmuConfig::paper()).stats.cycles;
    assert!(imp < base, "IMP must help SpMV ({imp} vs {base})");
    assert!(tmu < imp, "TMU must beat IMP ({tmu} vs {imp})");
}

#[test]
fn deeper_queues_help_memory_bound_spmv() {
    // Figure 14: SpMV is storage-sensitive.
    let w = Spmv::new(&gen::uniform(4096, 65_536, 8, 19));
    let cfg = two_cores();
    let small = w.run_tmu(cfg, TmuConfig::paper().with_total_storage(2 << 10));
    let large = w.run_tmu(cfg, TmuConfig::paper().with_total_storage(16 << 10));
    assert!(
        large.stats.cycles < small.stats.cycles,
        "16KB must beat 2KB: {} vs {}",
        large.stats.cycles,
        small.stats.cycles
    );
}

#[test]
fn spkadd_parallel_loading_unlocks_mlp() {
    // §7.1: SpKAdd loads all eight matrices in parallel lanes.
    let w = Spkadd::new(&gen::uniform(4096, 2048, 6, 23));
    let base = w.run_baseline(two_cores());
    let run = w.run_tmu(two_cores(), TmuConfig::paper());
    assert!(
        run.stats.cycles * 3 < base.cycles,
        "SpKAdd speedup must exceed 3x: {} vs {}",
        base.cycles,
        run.stats.cycles
    );
}

#[test]
fn functional_results_are_lane_count_invariant() {
    // The same program semantics at 1/2/4/8 lanes.
    let a = gen::uniform(512, 512, 6, 29);
    let w = Spmv::new(&a);
    for lanes in [1, 2, 4, 8] {
        let mut got = Vec::new();
        {
            let &range = &(0usize, 512usize);
            let prog = std::sync::Arc::new(w.build_program(range, lanes));
            let mut handler = tmu_kernels::spmv::SpmvHandler::new(w.x_region(), range.0);
            let mut vm = tmu_sim::VecMachine::new();
            tmu::for_each_entry(&prog, &w.image_handle(), |e| {
                use tmu::CallbackHandler;
                handler.handle(e, tmu_sim::OpId::NONE, &mut vm);
            });
            got.extend(handler.x);
        }
        for (g, r) in got.iter().zip(w.reference()) {
            assert!((g - r).abs() < 1e-9, "lanes={lanes}");
        }
    }
}
