//! Offline stub of `criterion`.
//!
//! Keeps `cargo bench` working with no crates.io access: every
//! `bench_function` runs its closure a handful of times and prints the
//! mean wall time. No statistics, no reports, no comparison against
//! saved baselines — benchmark numbers from this stub are smoke-level
//! only.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Stub of `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub does no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores the target time.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Times `f` over `sample_size` iterations and prints the mean.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
        println!(
            "bench {id:<40} {:>12.3} ms/iter (stub, {} iters)",
            mean * 1e3,
            b.iterations
        );
        self
    }
}

/// Stub of `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, timing it.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink (stub of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Stub of `criterion_group!`: builds a function running every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Stub of `criterion_main!`: a `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
