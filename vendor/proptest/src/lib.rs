//! Offline stub of `proptest`.
//!
//! Supports the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, range and tuple strategies,
//! `prop_map`, the `collection::{vec, btree_map, btree_set}` strategies,
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: each test derives its RNG seed from the test
//!   name, so failures reproduce exactly (`PROPTEST_SEED` overrides it).
//! * **No shrinking**: a failing case panics with the generated inputs
//!   (tests bind them by name, so the panic message plus `Debug` output
//!   localizes the failure).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for `test_name`, honouring `PROPTEST_SEED`.
    pub fn for_test(test_name: &str) -> Self {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            return Self { state: seed };
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// Test-runner configuration (stub of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator (stub of `proptest::strategy::Strategy`).
///
/// The stub collapses proptest's `ValueTree` layer: a strategy directly
/// produces values and there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value (stub of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    fn size_in(range: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + rng.below((range.end - range.start) as u64) as usize
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = size_in(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with up to `size` entries (duplicates
    /// collapse, matching real proptest semantics).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = size_in(&self.size, rng);
            (0..n)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet` with up to `size` elements.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = size_in(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests (stub of `proptest::proptest!`).
///
/// Supported grammar: an optional `#![proptest_config(EXPR)]` header
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    (@fns $cfg:expr; ) => {};
    (@fns $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            x in 0u32..10,
            v in crate::collection::vec(0usize..5, 1..4),
            pair in (0u32..3, 0.5f64..1.5).prop_map(|(a, f)| (a + 1, f * 2.0)),
        ) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!((1..=3).contains(&pair.0));
            prop_assert!((1.0..3.0).contains(&pair.1));
        }

        #[test]
        fn collections_respect_bounds(
            m in crate::collection::btree_map((0u32..8, 0u32..8), 0.25f64..4.0, 0..20),
            s in crate::collection::btree_set(0u32..64, 0..24),
        ) {
            prop_assert!(m.len() < 20);
            prop_assert!(s.len() < 24);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
