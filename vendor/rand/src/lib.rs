//! Offline stub of `rand` 0.8.
//!
//! Implements the subset of the `rand` API this workspace uses —
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! convenience methods (`gen`, `gen_range`, `gen_bool`) — on top of a
//! SplitMix64 generator. Deterministic for a given seed, which is all
//! the synthetic input generators require; it makes no statistical or
//! cryptographic claims beyond "well mixed enough for test data".
//!
//! The bit streams differ from the real `rand` crate, so synthetic
//! inputs generated under this stub differ from ones generated with
//! crates.io `rand` at the same seed (still fully reproducible).

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness (stub of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly mixed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly mixed bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (stub of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that [`Rng::gen`] can sample (stub of
/// `rand::distributions::Distribution<T>` for `Standard`).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The `Standard` distribution: what `rng.gen()` samples from.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit: the low bits of weak generators are weakest.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range `gen_range` can sample from (stub of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing convenience methods (stub of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// SplitMix64 step: the shared core of both stub generators.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stub generators (`SmallRng`, `StdRng`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stub of `rand::rngs::SmallRng`: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Stub of `rand::rngs::StdRng`: same engine, distinct stream
    /// (seed is pre-whitened so `StdRng` and `SmallRng` with equal seeds
    /// do not emit identical sequences).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed ^ 0xA076_1D64_78BD_642F;
            let _ = splitmix64(&mut s);
            Self { state: s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// `rand::distributions` facade over the stub types.
pub mod distributions {
    pub use super::{Distribution, SampleRange, Standard};
}

/// Module mirror of the prelude items some code imports.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(0..48);
            assert!(v < 48);
            let w: i64 = r.gen_range(-24i64..=24);
            assert!((-24..=24).contains(&w));
            let f: f64 = r.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
