//! Offline stub of `serde`.
//!
//! Provides just enough API surface for this workspace to compile with
//! no crates.io access: the `Serialize`/`Deserialize` marker traits and
//! the matching stub derive macros. No actual (de)serialization happens
//! through these traits — `results/bench.json` is written by the
//! explicit JSON emitter in `tmu-bench` (`tmu_bench::json`).

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided: no code in
/// this workspace names the `'de` parameter).
pub trait Deserialize {}
