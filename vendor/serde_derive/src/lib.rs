//! Offline stub of `serde_derive`.
//!
//! The real crate generates full (de)serialization code; this stub only
//! emits empty marker-trait impls so `#[derive(Serialize, Deserialize)]`
//! compiles in an environment with no crates.io access. Actual JSON
//! output in this repository is produced by explicit writers (see
//! `tmu-bench`'s `json` module), not through these traits.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive was applied to.
///
/// Attribute bodies and doc comments live inside `Group` tokens, so the
/// first top-level `struct`/`enum`/`union` keyword reliably precedes the
/// type name.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Ident(name) => return name.to_string(),
                        _ => continue,
                    }
                }
            }
        }
    }
    panic!("serde stub derive: could not find a type name in the input");
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let name = type_name(input.clone());
    // Generic types would need the generics repeated on the impl; the
    // stub keeps to the concrete types this workspace actually derives.
    let mut after_name = false;
    for tt in input {
        if after_name {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == '<' {
                    return format!(
                        "compile_error!(\"serde stub derive does not support generic type `{name}`\");"
                    )
                    .parse()
                    .unwrap();
                }
            }
            break;
        }
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == name {
                after_name = true;
            }
        }
    }
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .unwrap()
}

/// Stub `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Stub `#[derive(Deserialize)]`: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
